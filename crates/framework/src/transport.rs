//! Cross-process envelope transport: length-prefixed frames over TCP, served
//! by a non-blocking reactor on the hand-rolled executor.
//!
//! # Wire format
//!
//! Every message is one *frame*:
//!
//! ```text
//! +----------+---------+----------------+-------------------------------+
//! | magic 2B | kind 1B | length 4B (BE) | payload (negotiated WireCodec) |
//! +----------+---------+----------------+-------------------------------+
//! ```
//!
//! The payload of a `Request`/`Response` frame is the *versioned envelope* of
//! [`crate::messages`] unchanged — the transport frames the existing protocol
//! rather than inventing a second one.  How the payload bytes are produced is
//! the connection's negotiated [`WireCodec`]: JSON text (every protocol
//! version) or the binary encoding of [`crate::codec`] (protocol 1.2+, the
//! default between upgraded peers).  Frames are built in a single buffer —
//! the 7 header bytes are reserved up front and the length patched in place
//! once the payload is serialized, so neither codec pays an encode-then-copy
//! step — and decoded payloads borrow from the connection's read buffer.
//!
//! `Hello`/`HelloReply` frames negotiate the [`ProtocolVersion`] **and** the
//! codec on connect; they themselves always travel as JSON, since they must
//! be legible before any negotiation has happened.  The client's `Hello`
//! advertises the codec names it speaks (`codecs`, absent for pre-1.2
//! peers); the accepted reply names the server's choice (`codec`, where
//! absent and `null` both mean JSON — pre-1.2 servers omit the field, this
//! build writes an explicit `null`) — the first entry of the server's own
//! preference list that the client also advertised, with JSON as the
//! mandatory fallback:
//!
//! | client advertises | server accepts | negotiated |
//! |---|---|---|
//! | `[binary, json]` (1.2 default) | `[binary, json]` | binary |
//! | — (1.0/1.1 peer)               | `[binary, json]` | json |
//! | `[json]` (forced)              | `[binary, json]` | json |
//! | `[binary, json]`               | `[json]` (forced) | json |
//!
//! A major-version mismatch is refused with a structured [`ServiceError`],
//! not a decode failure, and the accepted reply carries the grid
//! configuration and public prior so a remote client can rebuild the
//! location tree without an out-of-band channel (step ② of Fig. 1).
//! `Warm`/`WarmReply` frames carry the [`WarmRequest`] / [`WarmReport`] of
//! [`mod@crate::warm`] in the negotiated codec.  Setting `CORGI_WIRE_CODEC=json`
//! forces the JSON fallback process-wide (handy for CI interop runs and
//! packet-capture debugging).
//!
//! Protocol 1.4 adds the cluster tier: `WarmPush` frames replicate freshly
//! solved cache entries between peer servers, `Stats`/`StatsReply` expose a
//! server's runtime counters over the wire, and the hello exchange
//! additionally negotiates keyed HMAC frame authentication.  When both sides
//! hold the cluster key ([`crate::auth`]), every post-handshake frame carries
//! a 16-byte MAC trailer (counted in the header length) and a tampered,
//! unauthenticated or wrongly-keyed frame is rejected with a structured
//! [`ServiceErrorKind::Unauthenticated`] error before the connection drains.
//! The hello exchange itself stays unauthenticated JSON so a key mismatch is
//! always a *legible* rejection.  See [`crate::cluster`] for the shard router
//! and peer-replication layer built on these frames.
//!
//! Protocol 1.5 adds the resilience layer: `Ping`/`Pong` frames carry
//! liveness probes (a nonce echoed back, sealed like every keyed frame) for
//! the peer-health state machine of [`crate::cluster`], and
//! `Digest`/`DigestReply` frames carry the anti-entropy re-warm exchange — a
//! restarted server asks each peer for a bounded summary of its resident
//! `(privacy_level, δ)` cache keys and pulls the forests it is missing
//! ([`TcpServer::rewarm_from_peers`]), so a rejoin costs network transfer
//! instead of repeating the LP solves.  All four kinds are append-only: a
//! 1.4 peer that never sends them never sees them.  For deterministic
//! failure testing, an optional [`FaultPlan`] threads through the send and
//! connect paths (see [`crate::fault`] and `tests/chaos.rs`).
//!
//! Malformed input never hangs or kills the server: a bad magic, an unknown
//! frame kind, an oversized length prefix or an unparsable payload (in either
//! codec — a peer that negotiated binary and then sends JSON bytes is a codec
//! desync and fails the same way) each produce a `Response` frame carrying a
//! [`ServiceErrorKind::Transport`] error (request id 0, since no request was
//! decodable) after which the connection drains and closes; a half-sent frame
//! is bounded by the handshake/read deadline.  Connection-level behaviour is
//! observable as a [`TransportStats`] snapshot ([`TcpServer::stats`] /
//! [`TcpTransport::stats`]), the transport-layer analogue of
//! [`crate::ServiceStats`].
//!
//! # Server architecture
//!
//! ```text
//! client sockets ──► reactor shard 0:  Executor::run        ("corgi-reactor-0")
//!                      ├─ AcceptTask   nonblocking accept ──round-robin──┐
//!                      └─ ConnectionTask ×N read frames → decode envelopes
//!                             │  ▲                           │           │
//!                             │  └── oneshot completions ◄── ▼           │
//!                             │      (wake the task)   dispatch ThreadPool
//!                             └─ bounded write queue ──► service.handle_envelope
//!                    reactor shard 1..S-1: Executor::run  ◄──────────────┘
//!                      └─ ConnectionTask ×N   (same loop, own poll set
//!                                              and TransportStats shard)
//! ```
//!
//! Accepted connections are sharded across
//! [`TransportConfig::reactor_shards`] reactor threads: the single listener
//! lives on shard 0, whose `AcceptTask` hands each accepted socket to the
//! next shard round-robin.  Every shard runs its own executor (and, on the
//! epoll backend, its own kernel poll set — see [`ReactorBackend`]) and
//! accounts its connections in its own [`TransportStats`];
//! [`TcpServer::stats`] and the wire `Stats` frame report the aggregate,
//! [`TcpServer::shard_stats`] the per-shard breakdown.
//!
//! A reactor thread never computes: each decoded envelope is handed to the
//! dispatch [`ThreadPool`] (shared by all shards, so admission control stays
//! server-wide), where the service stack (cache → generator → LP solver pool)
//! runs, and the encoded response re-enters the event loop through a
//! [`oneshot`] future.  Responses are therefore delivered in *completion*
//! order, correlated by `request_id` — pipelining N requests on one
//! connection keeps N solves in flight.  Per-connection backpressure is a
//! bounded write queue plus an in-flight cap: a connection at either bound
//! stops being read until it drains.
//!
//! # Admission control
//!
//! Per-connection backpressure cannot protect the server from *many*
//! connections each offering a modest rate: every queue stays under its local
//! bound while the shared dispatch pool's backlog — and therefore every
//! queued request's latency — grows without limit.  The reactor therefore
//! applies admission control at the dispatch boundary: a `Request` frame that
//! arrives while the pool backlog ([`ThreadPool::backlog`]) is at or past
//! [`TransportConfig::max_dispatch_backlog`] is *shed* — answered immediately
//! with a structured [`ServiceErrorKind::Overloaded`] error echoing the
//! request's own id — instead of queued.  Shedding is not a protocol failure:
//! the connection stays open and synchronized, the client sees a retryable
//! error (see [`ServiceError::is_retryable`]), and the requests the server
//! *does* admit complete at bounded latency.  `Warm` frames are exempt: their
//! key count is already bounded by [`TransportConfig::max_warm_keys`] and
//! warming is an explicit operator action, not open-loop traffic.  Shed and
//! admitted counts are visible as [`TransportStats::requests_shed`] /
//! [`TransportStats::requests_admitted`], and the read-side memory bound as
//! [`TransportStats::read_buffer_high_water`].
//!
//! [`ProtocolVersion`]: crate::messages::ProtocolVersion
//! [`ServiceErrorKind::Transport`]: crate::messages::ServiceErrorKind::Transport
//! [`oneshot`]: crate::executor::oneshot

use crate::auth::{ClusterKey, AUTH_SCHEME};
use crate::cluster::{
    spawn_probe_shard, ClusterMetrics, ClusterStats, Ping, Pong, Replicator, StatsReport,
    StatsRequest,
};
use crate::executor::{oneshot, Executor, Handle, ReactorBackend, Sleep};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::messages::{MatrixRequest, ProtocolVersion, WireCodec};
use crate::messages::{
    PrivacyForestResponse, RequestEnvelope, ResponseEnvelope, ServiceError, ServiceErrorKind,
    PROTOCOL_VERSION,
};
use crate::pool::ThreadPool;
use crate::service::{MatrixService, WarmInsertOutcome};
use crate::warm::{
    warm, DigestReply, DigestRequest, RewarmReport, WarmFailure, WarmPush, WarmReport, WarmRequest,
};
use corgi_core::LocationTree;
use corgi_datagen::PriorDistribution;
use corgi_hexgrid::{HexGrid, HexGridConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::future::Future;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::time::Duration;

/// The raw descriptor of a socket, for readiness registration with
/// [`Handle::park_socket`]; `-1` on targets without raw fds, where the
/// executor is on the tick backend and ignores the value anyway.
#[cfg(unix)]
pub(crate) fn sock_fd<T: std::os::fd::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}
#[cfg(not(unix))]
pub(crate) fn sock_fd<T>(_sock: &T) -> i32 {
    -1
}

/// First two bytes of every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"CG";
/// Bytes before the payload: magic (2) + kind (1) + big-endian length (4).
pub const FRAME_HEADER_LEN: usize = 7;

/// Frame kinds of the wire protocol (the third header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: version negotiation opener ([`HelloFrame`]).
    Hello = 0,
    /// Server → client: negotiation outcome ([`HelloReply`]).
    HelloReply = 1,
    /// Client → server: a [`RequestEnvelope`].
    Request = 2,
    /// Server → client: a [`ResponseEnvelope`].
    Response = 3,
    /// Client → server: a [`WarmRequest`] to precompute the cache.
    Warm = 4,
    /// Server → client: the [`WarmReport`] answering a `Warm` frame.
    WarmReply = 5,
    /// Peer → peer: a [`WarmPush`] replicating a freshly solved cache entry
    /// (protocol 1.4).  Fire-and-forget: no reply frame.
    WarmPush = 6,
    /// Client → server: a [`StatsRequest`] asking for the runtime counters
    /// (protocol 1.4).
    Stats = 7,
    /// Server → client: the [`StatsReport`] answering a `Stats` frame
    /// (protocol 1.4).
    StatsReply = 8,
    /// Peer → peer: a liveness probe carrying a [`Ping`] nonce
    /// (protocol 1.5).
    Ping = 9,
    /// Peer → peer: the [`Pong`] echoing a probe's nonce (protocol 1.5).
    Pong = 10,
    /// Peer → peer: a [`DigestRequest`] asking for the summary of resident
    /// cache keys, or pulling one key's forest (protocol 1.5).
    Digest = 11,
    /// Peer → peer: the [`DigestReply`] answering a `Digest` frame
    /// (protocol 1.5).
    DigestReply = 12,
}

impl FrameKind {
    fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::Hello),
            1 => Some(Self::HelloReply),
            2 => Some(Self::Request),
            3 => Some(Self::Response),
            4 => Some(Self::Warm),
            5 => Some(Self::WarmReply),
            6 => Some(Self::WarmPush),
            7 => Some(Self::Stats),
            8 => Some(Self::StatsReply),
            9 => Some(Self::Ping),
            10 => Some(Self::Pong),
            11 => Some(Self::Digest),
            12 => Some(Self::DigestReply),
            _ => None,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 2]),
    /// The kind byte named no known [`FrameKind`].
    UnknownKind(u8),
    /// The length prefix exceeded the configured maximum.
    Oversized {
        /// Length the peer announced.
        len: usize,
        /// Maximum this side accepts.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:02x?}"),
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> Self {
        ServiceError::transport(e.to_string())
    }
}

/// Encode one frame from already-serialized payload bytes.
///
/// This copies `payload` into the frame; the serving paths avoid that copy by
/// serializing straight into a header-reserved buffer (see
/// [`WireCodec::encode_frame`]) — this entry point remains for raw-frame
/// tests and hand-rolled peers.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut frame = vec![0u8; FRAME_HEADER_LEN];
    frame.extend_from_slice(payload);
    seal_frame(frame, kind)
}

/// Patch the frame header into a buffer whose first [`FRAME_HEADER_LEN`]
/// bytes were reserved before the payload was serialized in place — the
/// single-buffer frame construction used by both codecs.
pub(crate) fn seal_frame(mut frame: Vec<u8>, kind: FrameKind) -> Vec<u8> {
    let payload_len = frame.len() - FRAME_HEADER_LEN;
    frame[0..2].copy_from_slice(&FRAME_MAGIC);
    frame[2] = kind as u8;
    frame[3..7].copy_from_slice(&(payload_len as u32).to_be_bytes());
    frame
}

/// Validate a frame header and return its kind and payload length — the one
/// definition of the header rules, shared by the reactor's incremental
/// decoder and the client's blocking receive.
fn parse_frame_header(
    header: &[u8; FRAME_HEADER_LEN],
    max_payload: usize,
) -> Result<(FrameKind, usize), FrameError> {
    if header[0..2] != FRAME_MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    let kind = FrameKind::from_byte(header[2]).ok_or(FrameError::UnknownKind(header[2]))?;
    let len = u32::from_be_bytes([header[3], header[4], header[5], header[6]]) as usize;
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    Ok((kind, len))
}

/// Locate one complete frame at the front of `buf` without copying.
///
/// Returns the frame kind and the byte range of its payload within `buf`;
/// the frame occupies `..range.end`.  `Ok(None)` means more bytes are needed
/// (a truncated frame is simply incomplete — callers bound the wait with a
/// deadline); a malformed header fails without consuming so the caller can
/// report and close.  The reactor decodes payloads straight out of this
/// borrowed range and consumes processed frames with one `drain` per poll.
pub fn peek_frame(
    buf: &[u8],
    max_payload: usize,
) -> Result<Option<(FrameKind, std::ops::Range<usize>)>, FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let header: [u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN]
        .try_into()
        .expect("slice length checked above");
    let (kind, len) = parse_frame_header(&header, max_payload)?;
    if buf.len() < FRAME_HEADER_LEN + len {
        return Ok(None);
    }
    Ok(Some((kind, FRAME_HEADER_LEN..FRAME_HEADER_LEN + len)))
}

/// Try to decode one complete frame from the front of `buf`, consuming it on
/// success.  A copying convenience over [`peek_frame`] for blocking callers
/// and tests.
pub fn try_decode_frame(
    buf: &mut Vec<u8>,
    max_payload: usize,
) -> Result<Option<(FrameKind, Vec<u8>)>, FrameError> {
    match peek_frame(buf, max_payload)? {
        None => Ok(None),
        Some((kind, range)) => {
            let payload = buf[range.clone()].to_vec();
            buf.drain(..range.end);
            Ok(Some((kind, payload)))
        }
    }
}

/// Encode a hello-exchange message as a JSON frame.  The hello exchange
/// always travels as JSON — it bootstraps the codec negotiation, so it must
/// stay legible to every protocol version; the framing itself is the shared
/// single-buffer path of [`WireCodec::encode_frame`].
pub(crate) fn encode_json_frame<M: crate::codec::WireMessage>(message: &M) -> Vec<u8> {
    WireCodec::Json.encode_frame(message)
}

/// Decode a hello-exchange payload as JSON (see [`encode_json_frame`]).
pub(crate) fn parse_json_payload<M: crate::codec::WireMessage>(
    payload: &[u8],
) -> Result<M, ServiceError> {
    WireCodec::Json.decode_payload(payload)
}

/// Payload of a [`FrameKind::Hello`] frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloFrame {
    /// Protocol version the connecting client speaks.
    pub version: ProtocolVersion,
    /// Codec names the client can decode, in no particular order (the server
    /// applies its own preference).  Absent for pre-1.2 peers, which speak
    /// JSON only — the server treats `None` exactly like `Some(["json"])`.
    pub codecs: Option<Vec<String>>,
    /// Frame-authentication scheme the client announces (protocol 1.4):
    /// `Some("hmac-sha256")` means every post-handshake frame the client
    /// sends will carry a MAC trailer and the client expects the same from
    /// the server.  Absent (pre-1.4 peers and unkeyed clients) means plain
    /// frames; a keyed server rejects such a hello with a structured
    /// [`Unauthenticated`](ServiceErrorKind::Unauthenticated) error.
    pub auth: Option<String>,
}

impl HelloFrame {
    /// A hello at the current [`PROTOCOL_VERSION`] advertising `codecs`.
    pub fn advertising(codecs: &[WireCodec]) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            codecs: Some(codecs.iter().map(|c| c.name().to_string()).collect()),
            auth: None,
        }
    }

    /// Announce keyed frame authentication (the `hmac-sha256` scheme).
    pub fn authenticated(mut self) -> Self {
        self.auth = Some(AUTH_SCHEME.to_string());
        self
    }
}

/// Payload of a [`FrameKind::HelloReply`] frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HelloReply {
    /// The versions are compatible; the connection is open for envelopes.
    /// Carries everything a remote client needs to mirror the server's public
    /// state: the grid configuration (rebuilding the location tree is
    /// deterministic) and the public prior over leaf cells.
    Accepted {
        /// Protocol version the server speaks.
        version: ProtocolVersion,
        /// Grid configuration; `HexGrid::new(grid)` reproduces the tree.
        grid: HexGridConfig,
        /// Public prior distribution over leaf cells.
        prior: PriorDistribution,
        /// Codec the server selected for every subsequent frame on this
        /// connection.  `None` means JSON, whether the field was absent (as
        /// from pre-1.2 servers, which never emit it) or an explicit `null`
        /// (as this build's serde shim writes `None`).
        codec: Option<String>,
        /// Echo of the negotiated frame-authentication scheme (protocol
        /// 1.4): `Some("hmac-sha256")` confirms the MAC trailer is active in
        /// both directions — this accepted reply itself already carries one.
        /// `None`/absent means plain frames.
        auth: Option<String>,
    },
    /// The versions are incompatible (or the hello was malformed); the server
    /// closes after sending this.
    Rejected(ServiceError),
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Tunables of the serving reactor and its transport.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Largest accepted inbound frame payload, in bytes.  Requests are tiny;
    /// the default (64 KiB) rejects runaway length prefixes outright.
    pub max_inbound_frame: usize,
    /// Encoded response frames a connection may queue before the reactor
    /// stops reading from it (write-side backpressure).
    pub write_queue_depth: usize,
    /// Decoded requests a connection may have in flight on the dispatch pool
    /// before the reactor stops reading from it (compute backpressure).
    pub max_inflight_per_connection: usize,
    /// Threads of the dispatch pool running the service stack.  This bounds
    /// server-wide concurrent generations; the LP fan-out below it is sized by
    /// [`crate::ServerConfig::worker_threads`].
    pub dispatch_threads: usize,
    /// Server-wide admission bound: a `Request` frame arriving while the
    /// dispatch pool's backlog (queued + running jobs, across *all*
    /// connections) is at or past this count is shed with a structured
    /// [`ServiceErrorKind::Overloaded`] reply instead of queued.  This is the
    /// knob that turns "queue grows without limit under overload" into
    /// "bounded latency for admitted requests, fast retryable errors for the
    /// rest".  The default (64) keeps worst-case queueing delay at
    /// `64 / dispatch_threads` service times.
    pub max_dispatch_backlog: usize,
    /// Reactor tick: how often sockets parked on `WouldBlock` are re-polled
    /// on the [`Tick`](ReactorBackend::Tick) backend.  On epoll it only
    /// bounds the wait for futures parked via the legacy poll set.
    pub io_poll_interval: Duration,
    /// How the reactor threads block between bursts of work.  The default
    /// honours `CORGI_REACTOR_BACKEND` and requests
    /// [`Epoll`](ReactorBackend::Epoll), which degrades to
    /// [`Tick`](ReactorBackend::Tick) wherever the readiness syscalls are
    /// unavailable (non-Linux, seccomp); [`TcpServer::backend`] reports what
    /// actually runs.
    pub reactor_backend: ReactorBackend,
    /// Reactor threads accepted connections are sharded across, round-robin.
    /// `0` (the default) sizes to available parallelism, capped at 8; any
    /// other value is used as-is (minimum 1).
    pub reactor_shards: usize,
    /// How long a fresh connection may take to complete the hello exchange
    /// (also bounds how long a truncated frame can sit half-read).
    pub handshake_timeout: Duration,
    /// Read-idle deadline for negotiated connections: a connection that
    /// produces no complete inbound frame for this long — with nothing in
    /// flight and nothing queued to write — is answered with a structured
    /// [`Transport`](ServiceErrorKind::Transport) error and drained,
    /// reclaiming its buffers and fd from connected-but-mute clients.  The
    /// deadline re-arms on every consumed frame.  `None` (the default) keeps
    /// the pre-1.5 behaviour: an idle connection lives until EOF.
    pub read_idle_timeout: Option<Duration>,
    /// Largest `(privacy_level, δ)` key count accepted in one `Warm` frame.
    /// Each key is a full forest generation, so an unbounded plan would let a
    /// single small frame pin the dispatch pool for hours.
    pub max_warm_keys: usize,
    /// Warming plan solved on the dispatch pool as soon as the server starts.
    pub warm_on_start: Option<WarmRequest>,
    /// Payload codecs this server accepts, in preference order; each
    /// connection uses the first entry its client also advertised (JSON is
    /// the mandatory fallback).  The default honours `CORGI_WIRE_CODEC`
    /// (see [`WireCodec::advertisement_from_env`]).
    pub codecs: Vec<WireCodec>,
    /// Cluster key for keyed frame authentication (protocol 1.4).  When set,
    /// every client must announce `hmac-sha256` in its hello and every
    /// post-handshake frame in both directions carries a MAC trailer;
    /// unkeyed hellos and tamper-failed frames are rejected with a
    /// structured [`ServiceErrorKind::Unauthenticated`] error.  The default
    /// reads `CORGI_CLUSTER_KEY` (see [`ClusterKey::from_env`]).
    pub cluster_key: Option<ClusterKey>,
    /// Peer-replication engine (protocol 1.4): when set, [`TcpServer::bind`]
    /// spawns its flush task on the reactor so keys offered by a
    /// [`crate::cluster::ReplicatingService`] stream to the configured peers
    /// as `WarmPush` frames.  Build one with [`Replicator::new`], wrap the
    /// generator, and add peers (before or after bind) with
    /// [`Replicator::add_peer`].
    pub replication: Option<Arc<Replicator>>,
    /// Deterministic fault injection for the server's send path (protocol
    /// 1.5 chaos testing; see [`crate::fault`]).  `None` — the default, and
    /// the only sane production value — costs one pointer check per queued
    /// frame.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_inbound_frame: 64 * 1024,
            write_queue_depth: 64,
            max_inflight_per_connection: 128,
            dispatch_threads: 4,
            max_dispatch_backlog: 64,
            io_poll_interval: Duration::from_micros(500),
            reactor_backend: ReactorBackend::from_env(),
            reactor_shards: 0,
            handshake_timeout: Duration::from_secs(5),
            read_idle_timeout: None,
            max_warm_keys: 1024,
            warm_on_start: None,
            codecs: WireCodec::advertisement_from_env(),
            cluster_key: ClusterKey::from_env(),
            replication: None,
            fault_plan: None,
        }
    }
}

impl TransportConfig {
    /// The actual shard count: `reactor_shards` as given, or — when 0 —
    /// available parallelism capped at 8 (beyond that the shared dispatch
    /// pool, not the reactors, is the bottleneck).
    pub fn resolved_shards(&self) -> usize {
        if self.reactor_shards > 0 {
            self.reactor_shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        }
    }
}

/// A point-in-time snapshot of a transport endpoint's connection-level
/// counters — the wire-layer analogue of [`crate::ServiceStats`].
///
/// [`TcpServer::stats`] fills every field; [`TcpTransport::stats`] describes
/// its single client connection (the accept/negotiation counters count that
/// one connection, and `poisoned_connections` is 0 or 1).  Serializable since
/// protocol 1.4, where it travels inside a [`StatsReport`] frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Connections accepted (server) or established (client).
    pub connections_accepted: u64,
    /// Connections that have fully closed.
    pub connections_closed: u64,
    /// Connections that negotiated the binary codec.
    pub binary_connections: u64,
    /// Connections that negotiated (or defaulted to) the JSON codec.
    pub json_connections: u64,
    /// Complete frames decoded from peers.
    pub frames_in: u64,
    /// Frames queued for (client: written to) the wire.
    pub frames_out: u64,
    /// Payload + header bytes read off sockets.
    pub bytes_in: u64,
    /// Payload + header bytes written to sockets.
    pub bytes_out: u64,
    /// Times a connection hit a backpressure bound (write queue or in-flight
    /// cap) and reading from it was suspended until it drained.
    pub backpressure_stalls: u64,
    /// Requests accepted past admission control and queued on the dispatch
    /// pool (server only).
    pub requests_admitted: u64,
    /// Requests shed by admission control with an
    /// [`ServiceErrorKind::Overloaded`] reply because the dispatch backlog was
    /// at [`TransportConfig::max_dispatch_backlog`] (server only).
    pub requests_shed: u64,
    /// Largest number of bytes any single connection's read buffer has held —
    /// the observable face of the inbound memory bound (one maximal frame
    /// plus a read chunk of slack per connection, never more).
    pub read_buffer_high_water: u64,
    /// Transport-level protocol failures (malformed frames, codec desyncs,
    /// oversized payloads) answered with a structured error.
    pub transport_errors: u64,
    /// Client connections poisoned by a stream desynchronization (every
    /// further call fails fast until the caller reconnects).
    pub poisoned_connections: u64,
}

impl TransportStats {
    /// Fold another snapshot into this one: counters add, the read-buffer
    /// high-water mark takes the maximum.  This is how per-shard snapshots
    /// aggregate into the server-wide view of [`TcpServer::stats`] and the
    /// wire `Stats` frame — no new wire fields, so protocol 1.4 peers decode
    /// the aggregate unchanged.
    pub fn merge(&mut self, other: &TransportStats) {
        self.connections_accepted += other.connections_accepted;
        self.connections_closed += other.connections_closed;
        self.binary_connections += other.binary_connections;
        self.json_connections += other.json_connections;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.backpressure_stalls += other.backpressure_stalls;
        self.requests_admitted += other.requests_admitted;
        self.requests_shed += other.requests_shed;
        self.read_buffer_high_water = self
            .read_buffer_high_water
            .max(other.read_buffer_high_water);
        self.transport_errors += other.transport_errors;
        self.poisoned_connections += other.poisoned_connections;
    }
}

/// Aggregate per-shard metric snapshots into one server-wide snapshot.
fn aggregate_stats(shards: &[Arc<TransportMetrics>]) -> TransportStats {
    let mut total = TransportStats::default();
    for shard in shards {
        total.merge(&shard.snapshot());
    }
    total
}

/// Shared atomic counters behind [`TransportStats`].
#[derive(Default)]
pub(crate) struct TransportMetrics {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    binary_connections: AtomicU64,
    json_connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    backpressure_stalls: AtomicU64,
    requests_admitted: AtomicU64,
    requests_shed: AtomicU64,
    read_buffer_high_water: AtomicU64,
    transport_errors: AtomicU64,
    poisoned_connections: AtomicU64,
}

impl TransportMetrics {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn raise_high_water(&self, bytes: u64) {
        self.read_buffer_high_water
            .fetch_max(bytes, Ordering::Relaxed);
    }

    fn count_codec(&self, codec: WireCodec) {
        match codec {
            WireCodec::Binary => Self::add(&self.binary_connections, 1),
            WireCodec::Json => Self::add(&self.json_connections, 1),
        }
    }

    fn snapshot(&self) -> TransportStats {
        TransportStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            binary_connections: self.binary_connections.load(Ordering::Relaxed),
            json_connections: self.json_connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            requests_admitted: self.requests_admitted.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            read_buffer_high_water: self.read_buffer_high_water.load(Ordering::Relaxed),
            transport_errors: self.transport_errors.load(Ordering::Relaxed),
            poisoned_connections: self.poisoned_connections.load(Ordering::Relaxed),
        }
    }
}

/// A running CORGI server: one reactor thread accepting framed-envelope TCP
/// connections on behalf of an `Arc<dyn MatrixService>` stack.
///
/// ```no_run
/// use corgi_framework::{
///     CachingService, ForestGenerator, MatrixService, ServerConfig, TcpServer, TcpTransport,
///     TransportConfig,
/// };
/// use corgi_core::LocationTree;
/// use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
/// use corgi_hexgrid::{HexGrid, HexGridConfig};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = HexGrid::new(HexGridConfig::san_francisco())?;
/// let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
/// let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
/// let service: Arc<dyn MatrixService> = Arc::new(CachingService::with_defaults(
///     ForestGenerator::new(LocationTree::new(grid), prior, ServerConfig::default()),
/// ));
/// let server = TcpServer::bind("127.0.0.1:0", service, TransportConfig::default())?;
/// let client = TcpTransport::connect(server.local_addr())?;
/// # Ok(())
/// # }
/// ```
pub struct TcpServer {
    local_addr: SocketAddr,
    shards: Vec<ShardRuntime>,
    /// Per-shard metric handles in shard order, shared with the connection
    /// tasks so the wire `Stats` frame can report the aggregate.
    shard_metrics: Arc<[Arc<TransportMetrics>]>,
    backend: ReactorBackend,
    cluster: Arc<ClusterMetrics>,
    replication: Option<Arc<Replicator>>,
    /// The served stack, retained so [`TcpServer::rewarm_from_peers`] can
    /// insert pulled forests into the local cache.
    service: Arc<dyn MatrixService>,
}

/// One reactor shard: its executor handle and thread.
struct ShardRuntime {
    handle: Handle,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Bind a listener and start the reactor shard threads
    /// (`corgi-reactor-0` … `corgi-reactor-{S-1}`; the listener lives on
    /// shard 0, which round-robins accepted connections across all shards).
    ///
    /// Returns as soon as the socket is listening; any
    /// [`TransportConfig::warm_on_start`] plan runs concurrently on the
    /// dispatch pool while connections are already being accepted.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn MatrixService>,
        config: TransportConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shard_count = config.resolved_shards();
        let executors: Vec<Executor> = (0..shard_count)
            .map(|_| Executor::with_backend(config.reactor_backend, config.io_poll_interval))
            .collect();
        // All shards resolve identically (the probe is cached), so shard 0
        // speaks for the server.
        let backend = executors[0].backend();
        let dispatch = Arc::new(ThreadPool::new(config.dispatch_threads.max(1)));
        if let Some(plan) = config.warm_on_start.clone() {
            let service = Arc::clone(&service);
            dispatch.execute(move || {
                let _ = warm(service.as_ref(), &plan);
            });
        }
        let shard_metrics: Arc<[Arc<TransportMetrics>]> = (0..shard_count)
            .map(|_| Arc::new(TransportMetrics::default()))
            .collect();
        let cluster = Arc::new(ClusterMetrics::default());
        let replication = config.replication.clone();
        if let Some(replicator) = replication.clone() {
            // Replication flush work shards with the reactors: each shard's
            // task drives the peer links assigned to it by index.  Liveness
            // probing (protocol 1.5) shards the same way when the replicator
            // carries a health config; spawn_probe_shard is a no-op when it
            // does not.
            for (index, executor) in executors.iter().enumerate() {
                crate::cluster::spawn_replication_shard(
                    &executor.handle(),
                    Arc::clone(&replicator),
                    Arc::clone(&dispatch),
                    index,
                    shard_count,
                );
                spawn_probe_shard(
                    &executor.handle(),
                    Arc::clone(&replicator),
                    Arc::clone(&dispatch),
                    Arc::clone(&cluster),
                    index,
                    shard_count,
                );
            }
        }
        let targets: Vec<ShardTarget> = executors
            .iter()
            .zip(shard_metrics.iter())
            .map(|(executor, metrics)| ShardTarget {
                handle: executor.handle(),
                metrics: Arc::clone(metrics),
            })
            .collect();
        executors[0].handle().spawn(AcceptTask {
            listener,
            handle: executors[0].handle(),
            targets,
            next: 0,
            service: Arc::clone(&service),
            dispatch,
            config: Arc::new(config),
            shard_metrics: Arc::clone(&shard_metrics),
            cluster: Arc::clone(&cluster),
        });
        let mut shards = Vec::with_capacity(shard_count);
        for (index, executor) in executors.into_iter().enumerate() {
            let handle = executor.handle();
            let reactor = std::thread::Builder::new()
                .name(format!("corgi-reactor-{index}"))
                .spawn(move || executor.run())?;
            shards.push(ShardRuntime {
                handle,
                reactor: Some(reactor),
            });
        }
        Ok(Self {
            local_addr,
            shards,
            shard_metrics,
            backend,
            cluster,
            replication,
            service,
        })
    }

    /// The bound address (useful with port 0 in tests and examples).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time snapshot of the server's connection-level counters,
    /// aggregated across every reactor shard.
    pub fn stats(&self) -> TransportStats {
        aggregate_stats(&self.shard_metrics)
    }

    /// Per-shard snapshots in shard order: index 0 is the shard owning the
    /// listener.  Each accepted connection is accounted (acceptance, frames,
    /// bytes, stalls) entirely in the shard it was handed to.
    pub fn shard_stats(&self) -> Vec<TransportStats> {
        self.shard_metrics
            .iter()
            .map(|metrics| metrics.snapshot())
            .collect()
    }

    /// Number of reactor shards serving connections.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The readiness backend the reactor shards actually run (after the
    /// [`ReactorBackend::resolve`] fallback).
    pub fn backend(&self) -> ReactorBackend {
        self.backend
    }

    /// A point-in-time snapshot of the server's cluster-tier counters:
    /// replication pushes received/deduplicated, auth rejections, and — when
    /// a [`Replicator`] is configured — per-peer link state.
    pub fn cluster_stats(&self) -> ClusterStats {
        self.cluster.snapshot(self.replication.as_deref())
    }

    /// Anti-entropy re-warm (protocol 1.5): ask each peer for the digest of
    /// its resident `(privacy_level, δ)` cache keys and pull every forest
    /// this server is missing, so a restarted shard rejoins at the cost of
    /// network transfer instead of repeating the LP solves — the serving
    /// peers answer pulls from cache only, never solving either.
    ///
    /// Blocks the calling thread (one peer at a time, bounded by the
    /// client config's timeouts); run it before re-admitting traffic, or
    /// concurrently — pulled keys become hits as they land.  Unreachable
    /// peers and failed pulls are reported, not fatal: re-warming is an
    /// optimization, and every key it misses is simply solved on first
    /// request like any cold miss.  Pulled keys count as
    /// [`ClusterStats::rewarm_keys_pulled`]; each answered pull counts as
    /// [`ClusterStats::pushes_repaired`] on the serving peer.
    pub fn rewarm_from_peers(&self, peers: &[String], config: ClientConfig) -> RewarmReport {
        let start = std::time::Instant::now();
        let mut report = RewarmReport {
            peers_reached: 0,
            missing: 0,
            pulled: 0,
            already_resident: 0,
            failures: Vec::new(),
            elapsed_ms: 0,
        };
        // Keys counted once across the whole run, so a key named by several
        // peers' digests is pulled from the first and counted resident for
        // the rest.
        let mut counted: std::collections::HashSet<(u8, usize)> = self
            .service
            .resident_keys()
            .into_iter()
            .map(|key| (key.privacy_level, key.delta))
            .collect();
        for endpoint in peers {
            let transport = match TcpTransport::connect_with(endpoint.as_str(), config.clone()) {
                Ok(transport) => transport,
                Err(error) => {
                    report.failures.push(WarmFailure {
                        privacy_level: 0,
                        delta: 0,
                        error: ServiceError::transport(format!(
                            "digest peer {endpoint} unreachable: {}",
                            error.message
                        )),
                    });
                    continue;
                }
            };
            let digest = match transport.cache_digest() {
                Ok(digest) => digest,
                Err(error) => {
                    report.failures.push(WarmFailure {
                        privacy_level: 0,
                        delta: 0,
                        error,
                    });
                    continue;
                }
            };
            report.peers_reached += 1;
            for key in digest.keys {
                if !counted.insert((key.privacy_level, key.delta)) {
                    report.already_resident += 1;
                    continue;
                }
                report.missing += 1;
                match transport.pull_resident(key) {
                    Ok(Some(forest)) => {
                        self.service.warm_insert(forest);
                        self.cluster.count_rewarm_pulled();
                        report.pulled += 1;
                    }
                    // Evicted between digest and pull: not an error, just a
                    // key the run cannot repair (and a later peer may).
                    Ok(None) => {
                        counted.remove(&(key.privacy_level, key.delta));
                        report.missing -= 1;
                    }
                    Err(error) => {
                        report.failures.push(WarmFailure {
                            privacy_level: key.privacy_level,
                            delta: key.delta,
                            error,
                        });
                    }
                }
            }
        }
        report.elapsed_ms = start.elapsed().as_millis() as u64;
        report
    }

    /// Stop every reactor shard and join its thread.  Open connections are
    /// dropped; dispatch jobs already running finish first (the pool joins on
    /// drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for shard in &self.shards {
            shard.handle.shutdown();
        }
        for shard in &mut self.shards {
            if let Some(reactor) = shard.reactor.take() {
                let _ = reactor.join();
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One reactor shard as seen by the accept loop: where to spawn a
/// connection's task and where it accounts its counters.
struct ShardTarget {
    handle: Handle,
    metrics: Arc<TransportMetrics>,
}

/// Nonblocking accept loop on shard 0: each accepted socket becomes a
/// ConnectionTask on the next shard, round-robin.
struct AcceptTask {
    listener: TcpListener,
    /// Shard 0's own handle (where this task runs and parks).
    handle: Handle,
    targets: Vec<ShardTarget>,
    next: usize,
    service: Arc<dyn MatrixService>,
    dispatch: Arc<ThreadPool>,
    config: Arc<TransportConfig>,
    shard_metrics: Arc<[Arc<TransportMetrics>]>,
    cluster: Arc<ClusterMetrics>,
}

impl Future for AcceptTask {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        loop {
            match this.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let target = &this.targets[this.next % this.targets.len()];
                    this.next = this.next.wrapping_add(1);
                    // Accepted-connection accounting lands in the *target*
                    // shard, like every other counter the connection touches.
                    TransportMetrics::add(&target.metrics.connections_accepted, 1);
                    let deadline = target.handle.sleep(this.config.handshake_timeout);
                    target.handle.spawn(ConnectionTask {
                        stream,
                        handle: target.handle.clone(),
                        service: Arc::clone(&this.service),
                        dispatch: Arc::clone(&this.dispatch),
                        config: Arc::clone(&this.config),
                        metrics: Arc::clone(&target.metrics),
                        shard_metrics: Arc::clone(&this.shard_metrics),
                        cluster: Arc::clone(&this.cluster),
                        auth: None,
                        read_buf: Vec::new(),
                        write_queue: VecDeque::new(),
                        write_pos: 0,
                        pending: Vec::new(),
                        codec: WireCodec::Json,
                        negotiated: false,
                        draining: false,
                        eof: false,
                        stalled: false,
                        deadline,
                        idle: None,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    this.handle
                        .park_socket(sock_fd(&this.listener), true, false, cx.waker());
                    return Poll::Pending;
                }
                // Transient accept failures (e.g. aborted handshakes): retry
                // on the next readiness event or tick rather than killing the
                // listener.
                Err(_) => {
                    this.handle
                        .park_socket(sock_fd(&this.listener), true, false, cx.waker());
                    return Poll::Pending;
                }
            }
        }
    }
}

/// A reply being computed on the dispatch pool for one connection.
struct PendingReply {
    /// Echoed id for synthesizing an error if the job dies.
    request_id: u64,
    rx: oneshot::Receiver<Vec<u8>>,
}

/// One client connection: a manually-written state machine future.
struct ConnectionTask {
    stream: TcpStream,
    handle: Handle,
    service: Arc<dyn MatrixService>,
    dispatch: Arc<ThreadPool>,
    config: Arc<TransportConfig>,
    /// This connection's shard counters.
    metrics: Arc<TransportMetrics>,
    /// Every shard's counters, for the server-wide `Stats` frame aggregate.
    shard_metrics: Arc<[Arc<TransportMetrics>]>,
    cluster: Arc<ClusterMetrics>,
    /// Frame-authentication key, active from the moment the hello negotiates
    /// it (the accepted reply is already sealed with it); `None` means plain
    /// frames for the life of the connection.
    auth: Option<ClusterKey>,
    read_buf: Vec<u8>,
    /// Encoded frames awaiting the socket; `write_pos` is the offset into the
    /// front frame already written.
    write_queue: VecDeque<Vec<u8>>,
    write_pos: usize,
    pending: Vec<PendingReply>,
    /// Payload codec negotiated in the hello exchange (JSON until, and
    /// unless, the client advertises something better).
    codec: WireCodec,
    negotiated: bool,
    /// Once set, the connection stops reading and closes after the queue
    /// flushes (used after transport-level errors and hello rejection).
    draining: bool,
    eof: bool,
    /// Whether the connection is currently parked on a backpressure bound
    /// (tracked so the stall counter counts edges, not polls).
    stalled: bool,
    /// Handshake deadline, re-armed by [`ConnectionTask::begin_drain`] to cap
    /// the final flush; between negotiation and drain the connection lives
    /// until EOF.
    deadline: Sleep,
    /// Read-idle deadline ([`TransportConfig::read_idle_timeout`]): armed
    /// after negotiation, re-armed whenever a frame is consumed, `None` when
    /// reaping is off.  A connection whose timer fires with nothing in
    /// flight and nothing to write is reaped with a structured error.
    idle: Option<Sleep>,
}

impl Drop for ConnectionTask {
    fn drop(&mut self) {
        // The stream closes when this task drops; release its readiness
        // registration first so the shard's fd → waker map cannot retain a
        // stale entry for a recycled descriptor number.
        self.handle.deregister_socket(sock_fd(&self.stream));
        TransportMetrics::add(&self.metrics.connections_closed, 1);
    }
}

enum ReadOutcome {
    Progress,
    Idle,
    Eof,
}

impl ConnectionTask {
    /// Whether backpressure bounds forbid taking on more input right now.
    fn at_capacity(&self) -> bool {
        self.pending.len() >= self.config.max_inflight_per_connection
            || self.write_queue.len() >= self.config.write_queue_depth
    }

    /// High-water mark for buffered inbound bytes: one maximal frame plus a
    /// read chunk of slack.  Beyond it we stop draining the socket so TCP
    /// flow control pushes back on the peer instead of growing our heap.
    fn read_buffer_limit(&self) -> usize {
        self.config.max_inbound_frame + FRAME_HEADER_LEN + 4096
    }

    fn read_available(&mut self) -> ReadOutcome {
        let mut chunk = [0u8; 4096];
        let mut any = false;
        while self.read_buf.len() < self.read_buffer_limit() {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    TransportMetrics::add(&self.metrics.bytes_in, n as u64);
                    self.metrics.raise_high_water(self.read_buf.len() as u64);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Eof,
            }
        }
        if any {
            ReadOutcome::Progress
        } else {
            ReadOutcome::Idle
        }
    }

    /// Write queued frames until the socket blocks.  Returns false when the
    /// peer is gone.
    fn flush(&mut self) -> bool {
        while let Some(front) = self.write_queue.front() {
            match self.stream.write(&front[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.write_pos += n;
                    TransportMetrics::add(&self.metrics.bytes_out, n as u64);
                    if self.write_pos == front.len() {
                        self.write_queue.pop_front();
                        self.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// Queue an encoded frame for the wire — the single outbound choke
    /// point, so with authentication active every frame (including the
    /// accepted hello reply queued right after negotiation) gets its MAC
    /// trailer here.
    fn queue_frame(&mut self, frame: Vec<u8>) {
        TransportMetrics::add(&self.metrics.frames_out, 1);
        let mut frame = match &self.auth {
            Some(key) => key.seal(frame),
            None => frame,
        };
        if let Some(plan) = &self.config.fault_plan {
            match plan.check(FaultSite::ServerSend) {
                None => {}
                // The reactor thread must never sleep: a scheduled delay
                // degrades to a drop (documented on FaultAction::Delay).
                Some(FaultAction::DropFrame) | Some(FaultAction::Delay(_)) => return,
                Some(FaultAction::CloseConnection) => {
                    self.eof = true;
                    self.draining = true;
                    self.write_queue.clear();
                    self.write_pos = 0;
                    return;
                }
                Some(FaultAction::CorruptMac) => {
                    if let Some(last) = frame.last_mut() {
                        *last ^= 0xff;
                    }
                }
            }
        }
        self.write_queue.push_back(frame);
    }

    /// Stop reading and close once the write queue flushes, with a fresh
    /// deadline capping the drain (the handshake deadline this field
    /// previously held is long expired on an established connection).
    fn begin_drain(&mut self) {
        self.draining = true;
        self.deadline = self.handle.sleep(self.config.handshake_timeout);
    }

    fn queue_transport_error(&mut self, error: ServiceError) {
        TransportMetrics::add(&self.metrics.transport_errors, 1);
        // No request id was decodable; 0 is the documented "no request" id.
        // The error frame is encoded in the connection's negotiated codec —
        // the peer negotiated it, so it can decode it.
        let envelope = ResponseEnvelope::error(0, error);
        self.queue_frame(self.codec.encode_frame(&envelope));
        self.begin_drain();
    }

    /// Reject a frame that failed MAC verification: count it, answer with a
    /// structured `Unauthenticated` error (sealed with our own key — the
    /// legitimate keyholder can read it, a forger learns nothing new) and
    /// drain the connection.
    fn queue_auth_error(&mut self, error: crate::auth::AuthError) {
        self.cluster.count_auth_rejection();
        TransportMetrics::add(&self.metrics.transport_errors, 1);
        let envelope = ResponseEnvelope::error(
            0,
            ServiceError::unauthenticated(format!("frame failed authentication: {error}")),
        );
        self.queue_frame(self.codec.encode_frame(&envelope));
        self.begin_drain();
    }

    /// Decode and dispatch every complete frame in the read buffer.  Returns
    /// true if any frame was consumed.
    ///
    /// Payloads are handled as borrowed slices of the read buffer (the buffer
    /// is taken out of `self` for the duration, so `handle_frame` can still
    /// take `&mut self`) and all processed frames are consumed with a single
    /// `drain` — no per-frame payload copy, no per-frame memmove.
    fn process_frames(&mut self) -> bool {
        let buf = std::mem::take(&mut self.read_buf);
        let mut consumed = 0usize;
        let mut any = false;
        while !self.draining
            && self.pending.len() < self.config.max_inflight_per_connection
            && self.write_queue.len() < self.config.write_queue_depth
        {
            match peek_frame(&buf[consumed..], self.config.max_inbound_frame) {
                Ok(None) => break,
                Ok(Some((kind, range))) => {
                    any = true;
                    TransportMetrics::add(&self.metrics.frames_in, 1);
                    let frame_end = consumed + range.end;
                    // With authentication active the MAC covers the whole
                    // frame (header included) and the verified payload
                    // excludes the trailer the header length counted.
                    let payload = match &self.auth {
                        Some(key) => key.open(&buf[consumed..frame_end]),
                        None => Ok(&buf[consumed + range.start..frame_end]),
                    };
                    consumed = frame_end;
                    match payload {
                        Ok(payload) => self.handle_frame(kind, payload),
                        Err(e) => {
                            self.queue_auth_error(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    any = true;
                    self.queue_transport_error(e.into());
                    break;
                }
            }
        }
        self.read_buf = buf;
        self.read_buf.drain(..consumed);
        any
    }

    fn handle_frame(&mut self, kind: FrameKind, payload: &[u8]) {
        let codec = self.codec;
        match kind {
            FrameKind::Request => {
                let envelope: RequestEnvelope = match codec.decode_payload(payload) {
                    Ok(envelope) => envelope,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                // Admission control: a saturated dispatch pool sheds instead
                // of queueing.  The reply echoes the request's own id so the
                // client correlates it like any other response — the
                // connection stays open and synchronized (no drain), the
                // error is retryable.
                let backlog = self.dispatch.backlog();
                if backlog >= self.config.max_dispatch_backlog {
                    TransportMetrics::add(&self.metrics.requests_shed, 1);
                    let reply = ResponseEnvelope::error(
                        envelope.request_id,
                        ServiceError::overloaded(format!(
                            "dispatch backlog at {backlog} (limit {}); retry with backoff",
                            self.config.max_dispatch_backlog
                        )),
                    );
                    self.queue_frame(codec.encode_frame(&reply));
                    return;
                }
                TransportMetrics::add(&self.metrics.requests_admitted, 1);
                let (tx, rx) = oneshot::channel();
                self.pending.push(PendingReply {
                    request_id: envelope.request_id,
                    rx,
                });
                let service = Arc::clone(&self.service);
                self.dispatch.execute(move || {
                    // Envelope version check, service stack, serialization:
                    // all off the reactor thread.
                    let reply = service.handle_envelope(&envelope);
                    let _ = tx.send(codec.encode_frame(&reply));
                });
            }
            FrameKind::Warm => {
                let plan: WarmRequest = match codec.decode_payload(payload) {
                    Ok(plan) => plan,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                // Every key is a full forest generation: refuse plans large
                // enough to pin the dispatch pool (one small frame could
                // otherwise schedule hours of solves).  The deduplicated
                // request list is the actual work, not the raw product.
                let keys = plan.requests().len();
                if keys > self.config.max_warm_keys {
                    self.queue_transport_error(ServiceError::transport(format!(
                        "warm plan names {keys} keys, exceeding the {}-key limit",
                        self.config.max_warm_keys
                    )));
                    return;
                }
                let (tx, rx) = oneshot::channel();
                self.pending.push(PendingReply { request_id: 0, rx });
                let service = Arc::clone(&self.service);
                self.dispatch.execute(move || {
                    let report = warm(service.as_ref(), &plan);
                    let _ = tx.send(codec.encode_frame(&report));
                });
            }
            FrameKind::WarmPush => {
                let push: WarmPush = match codec.decode_payload(payload) {
                    Ok(push) => push,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                self.cluster.count_push_received();
                match push.forest {
                    // Payload push: adopt the peer's solved forest directly.
                    Some(forest) => {
                        if self.service.warm_insert(forest) == WarmInsertOutcome::AlreadyResident {
                            self.cluster.count_push_deduped();
                        }
                    }
                    // Key-only push: solve locally, fire-and-forget.  A push
                    // is advisory, so a saturated dispatch pool sheds it
                    // silently instead of competing with live requests.
                    None => {
                        if self.dispatch.backlog() >= self.config.max_dispatch_backlog {
                            self.cluster.count_push_ignored();
                        } else {
                            let service = Arc::clone(&self.service);
                            let request = push.request();
                            self.dispatch.execute(move || {
                                let _ = service.privacy_forest(request);
                            });
                        }
                    }
                }
            }
            FrameKind::Stats => {
                if let Err(e) = codec.decode_payload::<StatsRequest>(payload) {
                    self.queue_transport_error(e);
                    return;
                }
                // Counter snapshots are cheap: answered inline on the
                // reactor, aggregated across every shard so the wire view
                // matches TcpServer::stats().
                let report = StatsReport {
                    transport: aggregate_stats(&self.shard_metrics),
                    cache: self.service.cache_stats(),
                    cluster: Some(self.cluster.snapshot(self.config.replication.as_deref())),
                };
                self.queue_frame(codec.encode_frame(&report));
            }
            FrameKind::Ping => {
                // Liveness probe (protocol 1.5): echo the nonce back.  The
                // reply is queued inline on the reactor — a server that can
                // still run its event loop is, by definition, alive.
                let ping: Ping = match codec.decode_payload(payload) {
                    Ok(ping) => ping,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                self.queue_frame(codec.encode_frame(&Pong { nonce: ping.nonce }));
            }
            FrameKind::Digest => {
                // Anti-entropy exchange (protocol 1.5): a summary of resident
                // cache keys, or one pulled forest.  Both are answered from
                // the cache alone — a digest never schedules a solve.
                let request: DigestRequest = match codec.decode_payload(payload) {
                    Ok(request) => request,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                let reply = match request.pull {
                    None => {
                        // Bounded like Warm frames: a digest larger than the
                        // warm-key limit is truncated, not refused — a
                        // shorter summary just re-warms less.
                        let mut keys = self.service.resident_keys();
                        keys.truncate(self.config.max_warm_keys);
                        DigestReply {
                            generation: self.service.cache_generation(),
                            keys,
                            forest: None,
                        }
                    }
                    Some(key) => {
                        let forest = self.service.resident(key);
                        if forest.is_some() {
                            // One cache entry repaired into a rejoining peer.
                            self.cluster.count_push_repaired();
                        }
                        DigestReply {
                            generation: self.service.cache_generation(),
                            keys: Vec::new(),
                            forest,
                        }
                    }
                };
                self.queue_frame(codec.encode_frame(&reply));
            }
            // A second hello, or a server-to-client kind from a client: the
            // peer is confused; tell it so and hang up.
            FrameKind::Hello
            | FrameKind::HelloReply
            | FrameKind::Response
            | FrameKind::WarmReply
            | FrameKind::StatsReply
            | FrameKind::Pong
            | FrameKind::DigestReply => {
                self.queue_transport_error(ServiceError::transport(format!(
                    "unexpected {kind:?} frame after negotiation"
                )));
            }
        }
    }

    /// Move finished dispatch jobs from `pending` into the write queue.
    fn collect_completions(&mut self, cx: &mut Context<'_>) -> bool {
        let mut any = false;
        let mut completed: Vec<(usize, Vec<u8>)> = Vec::new();
        for (index, reply) in self.pending.iter_mut().enumerate() {
            match Pin::new(&mut reply.rx).poll(cx) {
                Poll::Ready(Ok(frame)) => completed.push((index, frame)),
                Poll::Ready(Err(_)) => {
                    // The dispatch job died (worker panic): the request must
                    // still get an answer.
                    let envelope = ResponseEnvelope::error(
                        reply.request_id,
                        ServiceError::new(
                            ServiceErrorKind::Internal,
                            "request handler panicked on the dispatch pool",
                        ),
                    );
                    completed.push((index, self.codec.encode_frame(&envelope)));
                }
                Poll::Pending => {}
            }
        }
        for (index, frame) in completed.into_iter().rev() {
            self.pending.remove(index);
            self.queue_frame(frame);
            any = true;
        }
        any
    }

    fn handshake_step(&mut self, cx: &mut Context<'_>) -> Option<Poll<()>> {
        // Bound the handshake (and any half-sent first frame) by the deadline.
        if Pin::new(&mut self.deadline).poll(cx).is_ready() {
            return Some(Poll::Ready(()));
        }
        match self.read_available() {
            ReadOutcome::Eof => return Some(Poll::Ready(())),
            ReadOutcome::Progress | ReadOutcome::Idle => {}
        }
        match try_decode_frame(&mut self.read_buf, self.config.max_inbound_frame) {
            Ok(None) => {
                self.handle.park_socket(
                    sock_fd(&self.stream),
                    true,
                    !self.write_queue.is_empty(),
                    cx.waker(),
                );
                Some(Poll::Pending)
            }
            Ok(Some((FrameKind::Hello, payload))) => {
                TransportMetrics::add(&self.metrics.frames_in, 1);
                match parse_json_payload::<HelloFrame>(&payload) {
                    Ok(hello) if PROTOCOL_VERSION.is_compatible_with(&hello.version) => {
                        // Authentication negotiation comes first: a key
                        // mismatch must surface as a legible structured
                        // rejection (always plain JSON), never a MAC failure.
                        match (&self.config.cluster_key, hello.auth.as_deref()) {
                            (Some(key), Some(AUTH_SCHEME)) => self.auth = Some(key.clone()),
                            (Some(_), announced) => {
                                self.cluster.count_auth_rejection();
                                let reply = HelloReply::Rejected(ServiceError::unauthenticated(
                                    match announced {
                                        None => "server requires authenticated frames \
                                                 (hmac-sha256); configure the cluster key"
                                            .to_string(),
                                        Some(other) => format!(
                                            "server requires the hmac-sha256 frame-authentication \
                                             scheme, client announced {other:?}"
                                        ),
                                    },
                                ));
                                self.queue_frame(encode_json_frame(&reply));
                                self.begin_drain();
                                return None;
                            }
                            (None, Some(scheme)) => {
                                self.cluster.count_auth_rejection();
                                let reply =
                                    HelloReply::Rejected(ServiceError::unauthenticated(format!(
                                        "client announced {scheme:?} frame authentication but \
                                         this server has no cluster key"
                                    )));
                                self.queue_frame(encode_json_frame(&reply));
                                self.begin_drain();
                                return None;
                            }
                            (None, None) => {}
                        }
                        // Codec negotiation: first of our codecs the client
                        // also advertised; a pre-1.2 hello (no codec list)
                        // negotiates the JSON fallback.
                        let codec =
                            WireCodec::negotiate(&self.config.codecs, hello.codecs.as_deref());
                        self.codec = codec;
                        self.metrics.count_codec(codec);
                        let reply = HelloReply::Accepted {
                            version: PROTOCOL_VERSION,
                            grid: *self.service.tree().grid().config(),
                            prior: (*self.service.prior()).clone(),
                            codec: match codec {
                                // `None`/`null`/absent all mean JSON, which
                                // is also all a pre-1.2 server can mean (its
                                // replies simply lack the field; this serde
                                // shim writes `None` as `"codec":null`).
                                WireCodec::Json => None,
                                WireCodec::Binary => Some(codec.name().to_string()),
                            },
                            auth: self.auth.as_ref().map(|_| AUTH_SCHEME.to_string()),
                        };
                        // queue_frame seals the accepted reply when auth just
                        // became active — the client verifies it on arrival.
                        self.queue_frame(encode_json_frame(&reply));
                        self.negotiated = true;
                        self.idle = self
                            .config
                            .read_idle_timeout
                            .map(|timeout| self.handle.sleep(timeout));
                        None // fall through into the serving loop
                    }
                    Ok(hello) => {
                        let reply =
                            HelloReply::Rejected(ServiceError::unsupported_version(hello.version));
                        self.queue_frame(encode_json_frame(&reply));
                        self.begin_drain();
                        None
                    }
                    Err(e) => {
                        // Handshake-phase transport failures count like any
                        // other (the version rejection above does not: it is
                        // a well-formed exchange, visible as an accepted-then-
                        // closed connection, not a transport error).
                        TransportMetrics::add(&self.metrics.transport_errors, 1);
                        self.queue_frame(encode_json_frame(&HelloReply::Rejected(e)));
                        self.begin_drain();
                        None
                    }
                }
            }
            Ok(Some((kind, _))) => {
                TransportMetrics::add(&self.metrics.frames_in, 1);
                TransportMetrics::add(&self.metrics.transport_errors, 1);
                self.queue_frame(encode_json_frame(&HelloReply::Rejected(
                    ServiceError::transport(format!("expected a Hello frame, got {kind:?}")),
                )));
                self.draining = true;
                None
            }
            Err(e) => {
                TransportMetrics::add(&self.metrics.transport_errors, 1);
                self.queue_frame(encode_json_frame(&HelloReply::Rejected(e.into())));
                self.draining = true;
                None
            }
        }
    }
}

impl Future for ConnectionTask {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.handle.is_shutdown() {
            return Poll::Ready(());
        }
        if !this.negotiated && !this.draining {
            if let Some(poll) = this.handshake_step(cx) {
                return poll;
            }
        }
        loop {
            let mut progress = false;

            if !this.draining {
                progress |= this.collect_completions(cx);
            }
            if !this.flush() {
                return Poll::Ready(()); // peer gone
            }
            if this.draining {
                if this.write_queue.is_empty() {
                    return Poll::Ready(());
                }
                // Bounded drain: begin_drain re-armed the deadline, capping
                // how long a slow peer may take the final error frame.
                if Pin::new(&mut this.deadline).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
                // Only the blocked write matters now; the deadline timer is
                // the other wake source.
                this.handle
                    .park_socket(sock_fd(&this.stream), false, true, cx.waker());
                return Poll::Pending;
            }
            if !this.eof && !this.at_capacity() {
                this.stalled = false;
                match this.read_available() {
                    ReadOutcome::Eof => this.eof = true,
                    ReadOutcome::Progress => progress = true,
                    ReadOutcome::Idle => {}
                }
            } else if !this.eof && !this.stalled {
                // Rising edge of a backpressure stall: the write queue or
                // in-flight cap is full, so the socket stops being read until
                // it drains (TCP flow control pushes back on the peer).
                this.stalled = true;
                TransportMetrics::add(&this.metrics.backpressure_stalls, 1);
            }
            progress |= this.process_frames();
            if let Some(timeout) = this.config.read_idle_timeout {
                if progress {
                    // Any consumed frame (or completed dispatch) re-arms the
                    // read-idle deadline.
                    this.idle = Some(this.handle.sleep(timeout));
                } else if let Some(idle) = this.idle.as_mut() {
                    if Pin::new(idle).poll(cx).is_ready() {
                        if this.pending.is_empty() && this.write_queue.is_empty() && !this.eof {
                            // Connected but mute: reclaim the connection with
                            // a structured goodbye instead of holding its
                            // buffers and fd forever.
                            this.queue_transport_error(ServiceError::transport(format!(
                                "no frame received within the {timeout:?} read-idle deadline; \
                                 closing",
                            )));
                        } else {
                            // In-flight work or queued output keeps the
                            // connection alive; give it a fresh window.
                            this.idle = Some(this.handle.sleep(timeout));
                        }
                        progress = true;
                    }
                }
            }
            if this.eof && this.pending.is_empty() && this.write_queue.is_empty() {
                return Poll::Ready(());
            }
            if !progress {
                // Completions wake us via their oneshot wakers; socket
                // readiness arrives from the kernel (epoll) or with the next
                // reactor tick.  Interest mirrors the state machine: read
                // while we would consume input, write while frames are
                // queued — a connection at capacity parks with no interest
                // and is woken only by a completion draining it.
                this.handle.park_socket(
                    sock_fd(&this.stream),
                    !this.eof && !this.at_capacity(),
                    !this.write_queue.is_empty(),
                    cx.waker(),
                );
                return Poll::Pending;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Tunables of a [`TcpTransport`] client connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Largest accepted frame payload from the server.  Responses carry whole
    /// privacy forests, so this is generous by default (64 MiB).
    pub max_frame: usize,
    /// Socket read timeout per blocking receive; bounds how long a truncated
    /// or withheld response can stall a caller.  `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Payload codecs to advertise in the hello.  The server picks by its
    /// own preference among these; JSON is always accepted as the fallback.
    /// The default honours `CORGI_WIRE_CODEC`
    /// (see [`WireCodec::advertisement_from_env`]).
    pub codecs: Vec<WireCodec>,
    /// Cluster key for keyed frame authentication (protocol 1.4).  When set,
    /// the hello announces `hmac-sha256`, every post-handshake frame in both
    /// directions carries a MAC trailer, and connecting to an unkeyed or
    /// differently-keyed server fails with a structured
    /// [`Unauthenticated`](ServiceErrorKind::Unauthenticated) error.  The
    /// default reads `CORGI_CLUSTER_KEY` (see [`ClusterKey::from_env`]).
    pub cluster_key: Option<ClusterKey>,
    /// Deterministic fault injection for this client's connect and send
    /// paths (protocol 1.5 chaos testing; see [`crate::fault`]).  `None` —
    /// the default — costs one pointer check per exchange.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_frame: 64 * 1024 * 1024,
            read_timeout: Some(Duration::from_secs(600)),
            codecs: WireCodec::advertisement_from_env(),
            cluster_key: ClusterKey::from_env(),
            fault_plan: None,
        }
    }
}

/// Client side of the framed envelope transport: a [`MatrixService`] whose
/// requests cross a process boundary over TCP.
///
/// Connecting performs the hello exchange, from which the transport learns the
/// server's protocol version, grid configuration (rebuilt into a local
/// [`LocationTree`]) and public prior — so a [`crate::CorgiClient`] can run
/// against a `TcpTransport` exactly as it does against an in-process stack.
///
/// The connection is a `Mutex`-serialized request/response channel: one
/// request is in flight at a time per transport (clone-free sharing across
/// threads works, callers just serialize).  Pipelining is a property of the
/// *server*; concurrent client load is modelled with multiple transports, as
/// in the loopback tests and benches.
pub struct TcpTransport {
    conn: Mutex<ClientConn>,
    tree: Arc<LocationTree>,
    prior: Arc<PriorDistribution>,
    server_version: ProtocolVersion,
    /// Payload codec negotiated for this connection.
    codec: WireCodec,
    next_request_id: AtomicU64,
    max_frame: usize,
    metrics: Arc<TransportMetrics>,
}

/// Connection state behind the transport's mutex.
struct ClientConn {
    stream: TcpStream,
    /// Set after a transport-level failure (timeout, truncated or
    /// uncorrelated frame) or a codec desync: the request/response stream may
    /// be desynchronized — a late response could be mistaken for the next
    /// call's reply — so every further call fails fast until the caller
    /// reconnects.
    poisoned: bool,
    /// Frame-authentication key negotiated in the hello exchange (`None`
    /// means plain frames): outbound frames are sealed, inbound frames are
    /// verified and stripped.
    auth: Option<ClusterKey>,
    metrics: Arc<TransportMetrics>,
    /// Fault injection hook ([`ClientConfig::fault_plan`]); `None` in
    /// production.
    fault_plan: Option<Arc<FaultPlan>>,
}

impl ClientConn {
    fn poison(&mut self) {
        if !self.poisoned {
            self.poisoned = true;
            TransportMetrics::add(&self.metrics.poisoned_connections, 1);
        }
    }

    /// One request/response exchange of pre-encoded frames.  Any
    /// transport-level failure — send failure, timeout, truncated frame —
    /// poisons the connection: a reply to this call may still arrive later
    /// and would desynchronize every subsequent exchange.
    fn exchange(
        &mut self,
        frame: Vec<u8>,
        max_frame: usize,
    ) -> Result<(FrameKind, Vec<u8>), ServiceError> {
        if self.poisoned {
            return Err(ServiceError::transport(
                "connection poisoned by an earlier stream desynchronization; reconnect",
            ));
        }
        let mut frame = match &self.auth {
            Some(key) => key.seal(frame),
            None => frame,
        };
        if let Some(plan) = &self.fault_plan {
            match plan.check(FaultSite::ClientSend) {
                None => {}
                Some(FaultAction::Delay(pause)) => std::thread::sleep(pause),
                // The send never happens; the receive path then times out (or
                // hits the closed socket) and poisons the connection exactly
                // as a real loss would.
                Some(FaultAction::DropFrame) => {
                    let result = read_frame_blocking(
                        &mut self.stream,
                        max_frame,
                        Some(&self.metrics),
                        self.auth.as_ref(),
                    );
                    self.poison();
                    return result;
                }
                Some(FaultAction::CloseConnection) => {
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                }
                Some(FaultAction::CorruptMac) => {
                    if let Some(last) = frame.last_mut() {
                        *last ^= 0xff;
                    }
                }
            }
        }
        let result =
            send_frame_blocking(&mut self.stream, &frame, Some(&self.metrics)).and_then(|()| {
                read_frame_blocking(
                    &mut self.stream,
                    max_frame,
                    Some(&self.metrics),
                    self.auth.as_ref(),
                )
            });
        if result.is_err() {
            self.poison();
        }
        result
    }
}

impl TcpTransport {
    /// Connect with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect, perform the version handshake and mirror the server's tree.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ServiceError> {
        if let Some(plan) = &config.fault_plan {
            // Level-triggered partitions fail the connect fast, endpoint by
            // endpoint, exactly like an unreachable host would.
            let partitioned = addr
                .to_socket_addrs()
                .ok()
                .into_iter()
                .flatten()
                .any(|candidate| plan.is_partitioned(&candidate.to_string()));
            if partitioned {
                return Err(ServiceError::transport(
                    "connect failed: endpoint is partitioned (injected)",
                ));
            }
        }
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServiceError::transport(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(|e| ServiceError::transport(format!("setting read timeout: {e}")))?;
        let mut stream = stream;
        let metrics = Arc::new(TransportMetrics::default());
        TransportMetrics::add(&metrics.connections_accepted, 1);
        // The hello exchange always travels as JSON: it is what carries the
        // codec (and authentication) negotiation, so it must be legible
        // before any agreement.
        let mut hello_frame = HelloFrame::advertising(&config.codecs);
        if config.cluster_key.is_some() {
            hello_frame = hello_frame.authenticated();
        }
        let hello = encode_json_frame(&hello_frame);
        send_frame_blocking(&mut stream, &hello, Some(&metrics))?;
        let (kind, header, mut payload) =
            read_frame_blocking_raw(&mut stream, config.max_frame, Some(&metrics))?;
        if kind != FrameKind::HelloReply {
            return Err(ServiceError::transport(format!(
                "expected a HelloReply frame, got {kind:?}"
            )));
        }
        if let Some(key) = &config.cluster_key {
            // An accepted reply from a keyed server is itself sealed; the
            // only *plain* reply a keyed client accepts is a structured
            // rejection — that is how a key mismatch stays a legible error
            // instead of a MAC failure.  (A pre-1.4 server would also reply
            // plain, having ignored the unknown `auth` hello field: caught
            // here rather than desynchronizing on the first sealed request.)
            if key.open_split(&header, &mut payload).is_err() {
                return match parse_json_payload::<HelloReply>(&payload) {
                    Ok(HelloReply::Rejected(error)) => Err(error),
                    _ => Err(ServiceError::unauthenticated(
                        "server did not authenticate its hello reply; it holds no (or a \
                         different) cluster key",
                    )),
                };
            }
        }
        match parse_json_payload::<HelloReply>(&payload)? {
            HelloReply::Accepted {
                version,
                grid,
                prior,
                codec,
                auth,
            } => {
                match (&config.cluster_key, auth.as_deref()) {
                    (Some(_), Some(AUTH_SCHEME)) | (None, None) => {}
                    (Some(_), _) => {
                        return Err(ServiceError::unauthenticated(
                            "server accepted without confirming hmac-sha256 frame authentication",
                        ))
                    }
                    (None, Some(scheme)) => {
                        return Err(ServiceError::unauthenticated(format!(
                            "server negotiated {scheme:?} frame authentication this client did \
                             not announce"
                        )))
                    }
                }
                let grid = HexGrid::new(grid).map_err(|e| {
                    ServiceError::transport(format!("server sent an invalid grid config: {e}"))
                })?;
                // The server must pick something we advertised (absent means
                // the JSON fallback, which every client accepts).
                let codec = match codec {
                    None => WireCodec::Json,
                    Some(name) => match WireCodec::from_name(&name) {
                        Some(codec)
                            if codec == WireCodec::Json || config.codecs.contains(&codec) =>
                        {
                            codec
                        }
                        _ => {
                            return Err(ServiceError::transport(format!(
                                "server selected codec {name:?}, which this client did not offer"
                            )))
                        }
                    },
                };
                metrics.count_codec(codec);
                Ok(Self {
                    conn: Mutex::new(ClientConn {
                        stream,
                        poisoned: false,
                        auth: config.cluster_key.clone(),
                        metrics: Arc::clone(&metrics),
                        fault_plan: config.fault_plan.clone(),
                    }),
                    tree: Arc::new(LocationTree::new(grid)),
                    prior: Arc::new(prior),
                    server_version: version,
                    codec,
                    next_request_id: AtomicU64::new(1),
                    max_frame: config.max_frame,
                    metrics,
                })
            }
            HelloReply::Rejected(error) => Err(error),
        }
    }

    /// Protocol version the server negotiated.
    pub fn server_version(&self) -> ProtocolVersion {
        self.server_version
    }

    /// Payload codec negotiated for this connection.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// A point-in-time snapshot of this connection's transport counters.
    pub fn stats(&self) -> TransportStats {
        self.metrics.snapshot()
    }

    /// Ask the server to precompute its cache over a `(privacy_level, δ)`
    /// grid; blocks until the server reports back.
    pub fn warm(&self, plan: &WarmRequest) -> Result<WarmReport, ServiceError> {
        let frame = self.codec.encode_frame(plan);
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(frame, self.max_frame)?;
        match kind {
            FrameKind::WarmReply => match self.codec.decode_payload(&payload) {
                Ok(report) => Ok(report),
                Err(e) => {
                    // An undecodable reply is a codec desync: fail fast on
                    // every further call until the caller reconnects.
                    conn.poison();
                    Err(e)
                }
            },
            FrameKind::Response => {
                // The server refused at the transport level (e.g. a plan
                // larger than its inbound frame limit) and is closing.
                conn.poison();
                let envelope: ResponseEnvelope = self.codec.decode_payload(&payload)?;
                Err(envelope
                    .into_result()
                    .err()
                    .unwrap_or_else(|| ServiceError::transport("unexpected forest reply")))
            }
            other => {
                conn.poison();
                Err(ServiceError::transport(format!(
                    "expected a WarmReply frame, got {other:?}"
                )))
            }
        }
    }

    /// Fetch the server's runtime counters over the wire (protocol 1.4):
    /// transport, cache and cluster snapshots in one [`StatsReport`].
    pub fn server_stats(&self) -> Result<StatsReport, ServiceError> {
        let frame = self.codec.encode_frame(&StatsRequest {});
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(frame, self.max_frame)?;
        match kind {
            FrameKind::StatsReply => match self.codec.decode_payload(&payload) {
                Ok(report) => Ok(report),
                Err(e) => {
                    conn.poison();
                    Err(e)
                }
            },
            FrameKind::Response => {
                // The server refused at the transport level and is closing.
                conn.poison();
                let envelope: ResponseEnvelope = self.codec.decode_payload(&payload)?;
                Err(envelope
                    .into_result()
                    .err()
                    .unwrap_or_else(|| ServiceError::transport("unexpected forest reply")))
            }
            other => {
                conn.poison();
                Err(ServiceError::transport(format!(
                    "expected a StatsReply frame, got {other:?}"
                )))
            }
        }
    }

    /// One liveness round-trip (protocol 1.5): send a nonce, verify the
    /// server echoes it.  Errors are transport failures; a mismatched nonce
    /// is a desynchronized stream and poisons the connection like one.
    pub fn ping(&self) -> Result<(), ServiceError> {
        static NONCE: AtomicU64 = AtomicU64::new(1);
        let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
        let frame = self.codec.encode_frame(&Ping { nonce });
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(frame, self.max_frame)?;
        if kind != FrameKind::Pong {
            conn.poison();
            return Err(ServiceError::transport(format!(
                "expected a Pong frame, got {kind:?}"
            )));
        }
        match self.codec.decode_payload::<Pong>(&payload) {
            Ok(pong) if pong.nonce == nonce => Ok(()),
            Ok(_) => {
                conn.poison();
                Err(ServiceError::transport(
                    "pong echoed a different nonce; stream desynchronized",
                ))
            }
            Err(e) => {
                conn.poison();
                Err(e)
            }
        }
    }

    /// Fetch the server's resident-cache digest (protocol 1.5): the
    /// generation-tagged summary of `(privacy_level, δ)` keys it could serve
    /// to a pull, bounded by the server's warm-key limit.
    pub fn cache_digest(&self) -> Result<DigestReply, ServiceError> {
        self.digest_exchange(DigestRequest { pull: None })
    }

    /// Pull one resident forest from the server's cache (protocol 1.5).
    /// `Ok(None)` means the key was not resident (e.g. evicted since the
    /// digest was taken) — the server never solves to answer a pull.
    pub fn pull_resident(
        &self,
        key: MatrixRequest,
    ) -> Result<Option<Arc<PrivacyForestResponse>>, ServiceError> {
        self.digest_exchange(DigestRequest { pull: Some(key) })
            .map(|reply| reply.forest)
    }

    fn digest_exchange(&self, request: DigestRequest) -> Result<DigestReply, ServiceError> {
        let frame = self.codec.encode_frame(&request);
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(frame, self.max_frame)?;
        match kind {
            FrameKind::DigestReply => match self.codec.decode_payload(&payload) {
                Ok(reply) => Ok(reply),
                Err(e) => {
                    conn.poison();
                    Err(e)
                }
            },
            FrameKind::Response => {
                // The server refused at the transport level and is closing.
                conn.poison();
                let envelope: ResponseEnvelope = self.codec.decode_payload(&payload)?;
                Err(envelope
                    .into_result()
                    .err()
                    .unwrap_or_else(|| ServiceError::transport("unexpected forest reply")))
            }
            other => {
                conn.poison();
                Err(ServiceError::transport(format!(
                    "expected a DigestReply frame, got {other:?}"
                )))
            }
        }
    }
}

impl MatrixService for TcpTransport {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let envelope = RequestEnvelope::new(request_id, request);
        let frame = self.codec.encode_frame(&envelope);
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(frame, self.max_frame)?;
        if kind != FrameKind::Response {
            conn.poison();
            return Err(ServiceError::transport(format!(
                "expected a Response frame, got {kind:?}"
            )));
        }
        let reply: ResponseEnvelope = match self.codec.decode_payload(&payload) {
            Ok(reply) => reply,
            Err(e) => {
                // Undecodable response: codec desync, poison like any other
                // stream desynchronization.
                conn.poison();
                return Err(e);
            }
        };
        if reply.request_id != request_id {
            // Either a transport-level error (id 0, server closing) or a
            // desynchronized stream; both poison the connection.  Surface the
            // carried error if there is one.
            conn.poison();
            return match reply.into_result() {
                Err(error) => Err(error),
                Ok(_) => Err(ServiceError::transport(
                    "response correlates to a different request",
                )),
            };
        }
        reply.into_result()
    }

    fn tree(&self) -> Arc<LocationTree> {
        Arc::clone(&self.tree)
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        Arc::clone(&self.prior)
    }
}

/// Send one pre-encoded frame over a blocking stream.
pub(crate) fn send_frame_blocking(
    stream: &mut TcpStream,
    frame: &[u8],
    metrics: Option<&TransportMetrics>,
) -> Result<(), ServiceError> {
    stream
        .write_all(frame)
        .map_err(|e| ServiceError::transport(format!("send failed: {e}")))?;
    if let Some(metrics) = metrics {
        TransportMetrics::add(&metrics.frames_out, 1);
        TransportMetrics::add(&metrics.bytes_out, frame.len() as u64);
    }
    Ok(())
}

/// Receive one frame from a blocking stream (honouring its read timeout),
/// verifying and stripping the MAC trailer when `auth` is active.
pub(crate) fn read_frame_blocking(
    stream: &mut TcpStream,
    max_payload: usize,
    metrics: Option<&TransportMetrics>,
    auth: Option<&ClusterKey>,
) -> Result<(FrameKind, Vec<u8>), ServiceError> {
    let (kind, header, mut payload) = read_frame_blocking_raw(stream, max_payload, metrics)?;
    if let Some(key) = auth {
        key.open_split(&header, &mut payload).map_err(|e| {
            ServiceError::unauthenticated(format!("peer frame failed authentication: {e}"))
        })?;
    }
    Ok((kind, payload))
}

/// Receive one frame from a blocking stream, returning the raw header
/// alongside the payload so callers can defer MAC verification (the client
/// hello exchange must tolerate a plain structured rejection from a server
/// that does not share its key).  The payload is read directly into its
/// final buffer — no staging copy.
pub(crate) fn read_frame_blocking_raw(
    stream: &mut TcpStream,
    max_payload: usize,
    metrics: Option<&TransportMetrics>,
) -> Result<(FrameKind, [u8; FRAME_HEADER_LEN], Vec<u8>), ServiceError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_mapped(stream, &mut header)?;
    let (kind, len) = parse_frame_header(&header, max_payload)?;
    let mut payload = vec![0u8; len];
    read_exact_mapped(stream, &mut payload)?;
    if let Some(metrics) = metrics {
        TransportMetrics::add(&metrics.frames_in, 1);
        TransportMetrics::add(&metrics.bytes_in, (FRAME_HEADER_LEN + len) as u64);
    }
    Ok((kind, header, payload))
}

fn read_exact_mapped(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ServiceError> {
    stream.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ServiceError::transport("timed out waiting for a frame")
        }
        io::ErrorKind::UnexpectedEof => {
            ServiceError::transport("connection closed mid-frame (truncated frame)")
        }
        _ => ServiceError::transport(format!("receive failed: {e}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_the_incremental_decoder() {
        let payload = br#"{"hello":"world"}"#;
        let mut buf = encode_frame(FrameKind::Request, payload);
        // Arrives in two halves: first read yields nothing, second completes.
        let tail = buf.split_off(5);
        let mut incoming = buf;
        assert_eq!(try_decode_frame(&mut incoming, 1024), Ok(None));
        incoming.extend_from_slice(&tail);
        let (kind, got) = try_decode_frame(&mut incoming, 1024).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(got, payload);
        assert!(incoming.is_empty(), "frame bytes fully consumed");
    }

    #[test]
    fn decoder_separates_back_to_back_frames() {
        let mut buf = encode_frame(FrameKind::Request, b"one");
        buf.extend_from_slice(&encode_frame(FrameKind::Warm, b"two"));
        let (k1, p1) = try_decode_frame(&mut buf, 1024).unwrap().unwrap();
        let (k2, p2) = try_decode_frame(&mut buf, 1024).unwrap().unwrap();
        assert_eq!((k1, p1.as_slice()), (FrameKind::Request, b"one".as_slice()));
        assert_eq!((k2, p2.as_slice()), (FrameKind::Warm, b"two".as_slice()));
        assert_eq!(try_decode_frame(&mut buf, 1024), Ok(None));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = b"XX\x02\x00\x00\x00\x00".to_vec();
        assert_eq!(
            try_decode_frame(&mut buf, 1024),
            Err(FrameError::BadMagic(*b"XX"))
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = encode_frame(FrameKind::Request, b"x");
        buf[2] = 250;
        assert_eq!(
            try_decode_frame(&mut buf, 1024),
            Err(FrameError::UnknownKind(250))
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        // A 4 GiB length prefix must be refused from the 7 header bytes alone.
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(FrameKind::Request as u8);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = try_decode_frame(&mut buf, 64 * 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u32::MAX as usize,
                max: 64 * 1024
            }
        );
        let service_error: ServiceError = err.into();
        assert_eq!(service_error.kind, ServiceErrorKind::Transport);
    }

    #[test]
    fn frame_errors_map_to_transport_service_errors() {
        for e in [
            FrameError::BadMagic(*b"no"),
            FrameError::UnknownKind(9),
            FrameError::Oversized { len: 10, max: 5 },
        ] {
            let s: ServiceError = e.into();
            assert_eq!(s.kind, ServiceErrorKind::Transport);
            assert!(!s.message.is_empty());
        }
    }

    #[test]
    fn hello_frames_roundtrip_through_json() {
        let hello = HelloFrame::advertising(&[WireCodec::Binary, WireCodec::Json]);
        let json = serde_json::to_string(&hello).unwrap();
        let back: HelloFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hello);

        // A pre-1.2 hello has no codec list (and no auth scheme); the
        // fields decode as None.
        let legacy = r#"{"version":{"major":1,"minor":1}}"#;
        let back: HelloFrame = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.codecs, None);
        assert_eq!(back.auth, None);

        // An authenticated hello round-trips its scheme.
        let keyed = HelloFrame::advertising(&[WireCodec::Json]).authenticated();
        let json = serde_json::to_string(&keyed).unwrap();
        let back: HelloFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(back.auth.as_deref(), Some(crate::auth::AUTH_SCHEME));

        let rejected = HelloReply::Rejected(ServiceError::unsupported_version(ProtocolVersion {
            major: 9,
            minor: 0,
        }));
        let json = serde_json::to_string(&rejected).unwrap();
        let back: HelloReply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rejected);
    }
}
