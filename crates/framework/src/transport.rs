//! Cross-process envelope transport: length-prefixed frames over TCP, served
//! by a non-blocking reactor on the hand-rolled executor.
//!
//! # Wire format
//!
//! Every message is one *frame*:
//!
//! ```text
//! +----------+---------+----------------+---------------------+
//! | magic 2B | kind 1B | length 4B (BE) | payload (JSON utf-8) |
//! +----------+---------+----------------+---------------------+
//! ```
//!
//! The payload of a `Request`/`Response` frame is the *versioned envelope* of
//! [`crate::messages`] unchanged — the transport frames the existing protocol
//! rather than inventing a second one.  `Hello`/`HelloReply` frames negotiate
//! the [`ProtocolVersion`] on connect (a major mismatch is refused with a
//! structured [`ServiceError`], not a decode failure), and the accepted reply
//! carries the grid configuration and public prior so a remote client can
//! rebuild the location tree without an out-of-band channel (step ② of
//! Fig. 1).  `Warm`/`WarmReply` frames carry the [`WarmRequest`] /
//! [`WarmReport`] of [`mod@crate::warm`].
//!
//! Malformed input never hangs or kills the server: a bad magic, an unknown
//! frame kind, an oversized length prefix or an unparsable payload each
//! produce a `Response` frame carrying a [`ServiceErrorKind::Transport`] error
//! (request id 0, since no request was decodable) after which the connection
//! drains and closes; a half-sent frame is bounded by the handshake/read
//! deadline.
//!
//! # Server architecture
//!
//! ```text
//! client sockets ──► reactor thread (one):  Executor::run
//!                      ├─ AcceptTask        nonblocking accept → spawn conn
//!                      └─ ConnectionTask ×N read frames → decode envelopes
//!                             │  ▲                           │
//!                             │  └── oneshot completions ◄── ▼
//!                             │      (wake the task)   dispatch ThreadPool
//!                             └─ bounded write queue ──► service.handle_envelope
//! ```
//!
//! The reactor thread never computes: each decoded envelope is handed to the
//! dispatch [`ThreadPool`], where the service stack (cache → generator → LP
//! solver pool) runs, and the encoded response re-enters the event loop
//! through a [`oneshot`] future.  Responses are therefore delivered in
//! *completion* order, correlated by `request_id` — pipelining N requests on
//! one connection keeps N solves in flight.  Per-connection backpressure is a
//! bounded write queue plus an in-flight cap: a connection at either bound
//! stops being read until it drains.
//!
//! [`ProtocolVersion`]: crate::messages::ProtocolVersion
//! [`ServiceErrorKind::Transport`]: crate::messages::ServiceErrorKind::Transport
//! [`oneshot`]: crate::executor::oneshot

use crate::executor::{oneshot, Executor, Handle, Sleep};
use crate::messages::{MatrixRequest, ProtocolVersion};
use crate::messages::{
    PrivacyForestResponse, RequestEnvelope, ResponseEnvelope, ServiceError, ServiceErrorKind,
    PROTOCOL_VERSION,
};
use crate::pool::ThreadPool;
use crate::service::MatrixService;
use crate::warm::{warm, WarmReport, WarmRequest};
use corgi_core::LocationTree;
use corgi_datagen::PriorDistribution;
use corgi_hexgrid::{HexGrid, HexGridConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::future::Future;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::time::Duration;

/// First two bytes of every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"CG";
/// Bytes before the payload: magic (2) + kind (1) + big-endian length (4).
pub const FRAME_HEADER_LEN: usize = 7;

/// Frame kinds of the wire protocol (the third header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: version negotiation opener ([`HelloFrame`]).
    Hello = 0,
    /// Server → client: negotiation outcome ([`HelloReply`]).
    HelloReply = 1,
    /// Client → server: a [`RequestEnvelope`].
    Request = 2,
    /// Server → client: a [`ResponseEnvelope`].
    Response = 3,
    /// Client → server: a [`WarmRequest`] to precompute the cache.
    Warm = 4,
    /// Server → client: the [`WarmReport`] answering a `Warm` frame.
    WarmReply = 5,
}

impl FrameKind {
    fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::Hello),
            1 => Some(Self::HelloReply),
            2 => Some(Self::Request),
            3 => Some(Self::Response),
            4 => Some(Self::Warm),
            5 => Some(Self::WarmReply),
            _ => None,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 2]),
    /// The kind byte named no known [`FrameKind`].
    UnknownKind(u8),
    /// The length prefix exceeded the configured maximum.
    Oversized {
        /// Length the peer announced.
        len: usize,
        /// Maximum this side accepts.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:02x?}"),
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> Self {
        ServiceError::transport(e.to_string())
    }
}

/// Encode one frame: header + JSON payload bytes.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(kind as u8);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Validate a frame header and return its kind and payload length — the one
/// definition of the header rules, shared by the reactor's incremental
/// decoder and the client's blocking receive.
fn parse_frame_header(
    header: &[u8; FRAME_HEADER_LEN],
    max_payload: usize,
) -> Result<(FrameKind, usize), FrameError> {
    if header[0..2] != FRAME_MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    let kind = FrameKind::from_byte(header[2]).ok_or(FrameError::UnknownKind(header[2]))?;
    let len = u32::from_be_bytes([header[3], header[4], header[5], header[6]]) as usize;
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    Ok((kind, len))
}

/// Try to decode one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed (a truncated frame is simply
/// incomplete — callers bound the wait with a deadline), consumes the frame
/// from `buf` on success, and fails without consuming on a malformed header so
/// the caller can report and close.
pub fn try_decode_frame(
    buf: &mut Vec<u8>,
    max_payload: usize,
) -> Result<Option<(FrameKind, Vec<u8>)>, FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let header: [u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN]
        .try_into()
        .expect("slice length checked above");
    let (kind, len) = parse_frame_header(&header, max_payload)?;
    if buf.len() < FRAME_HEADER_LEN + len {
        return Ok(None);
    }
    let payload = buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
    buf.drain(..FRAME_HEADER_LEN + len);
    Ok(Some((kind, payload)))
}

fn encode_json_frame<T: Serialize>(kind: FrameKind, value: &T) -> Vec<u8> {
    let json = serde_json::to_string(value).expect("wire types serialize infallibly");
    encode_frame(kind, json.as_bytes())
}

fn parse_payload<'de, T: Deserialize<'de>>(payload: &'de [u8]) -> Result<T, ServiceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServiceError::transport(format!("payload is not utf-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServiceError::transport(format!("malformed payload: {e:?}")))
}

/// Payload of a [`FrameKind::Hello`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HelloFrame {
    /// Protocol version the connecting client speaks.
    pub version: ProtocolVersion,
}

/// Payload of a [`FrameKind::HelloReply`] frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HelloReply {
    /// The versions are compatible; the connection is open for envelopes.
    /// Carries everything a remote client needs to mirror the server's public
    /// state: the grid configuration (rebuilding the location tree is
    /// deterministic) and the public prior over leaf cells.
    Accepted {
        /// Protocol version the server speaks.
        version: ProtocolVersion,
        /// Grid configuration; `HexGrid::new(grid)` reproduces the tree.
        grid: HexGridConfig,
        /// Public prior distribution over leaf cells.
        prior: PriorDistribution,
    },
    /// The versions are incompatible (or the hello was malformed); the server
    /// closes after sending this.
    Rejected(ServiceError),
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Tunables of the serving reactor and its transport.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Largest accepted inbound frame payload, in bytes.  Requests are tiny;
    /// the default (64 KiB) rejects runaway length prefixes outright.
    pub max_inbound_frame: usize,
    /// Encoded response frames a connection may queue before the reactor
    /// stops reading from it (write-side backpressure).
    pub write_queue_depth: usize,
    /// Decoded requests a connection may have in flight on the dispatch pool
    /// before the reactor stops reading from it (compute backpressure).
    pub max_inflight_per_connection: usize,
    /// Threads of the dispatch pool running the service stack.  This bounds
    /// server-wide concurrent generations; the LP fan-out below it is sized by
    /// [`crate::ServerConfig::worker_threads`].
    pub dispatch_threads: usize,
    /// Reactor tick: how often sockets parked on `WouldBlock` are re-polled.
    pub io_poll_interval: Duration,
    /// How long a fresh connection may take to complete the hello exchange
    /// (also bounds how long a truncated frame can sit half-read).
    pub handshake_timeout: Duration,
    /// Largest `(privacy_level, δ)` key count accepted in one `Warm` frame.
    /// Each key is a full forest generation, so an unbounded plan would let a
    /// single small frame pin the dispatch pool for hours.
    pub max_warm_keys: usize,
    /// Warming plan solved on the dispatch pool as soon as the server starts.
    pub warm_on_start: Option<WarmRequest>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_inbound_frame: 64 * 1024,
            write_queue_depth: 64,
            max_inflight_per_connection: 128,
            dispatch_threads: 4,
            io_poll_interval: Duration::from_micros(500),
            handshake_timeout: Duration::from_secs(5),
            max_warm_keys: 1024,
            warm_on_start: None,
        }
    }
}

/// A running CORGI server: one reactor thread accepting framed-envelope TCP
/// connections on behalf of an `Arc<dyn MatrixService>` stack.
///
/// ```no_run
/// use corgi_framework::{
///     CachingService, ForestGenerator, MatrixService, ServerConfig, TcpServer, TcpTransport,
///     TransportConfig,
/// };
/// use corgi_core::LocationTree;
/// use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
/// use corgi_hexgrid::{HexGrid, HexGridConfig};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = HexGrid::new(HexGridConfig::san_francisco())?;
/// let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
/// let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
/// let service: Arc<dyn MatrixService> = Arc::new(CachingService::with_defaults(
///     ForestGenerator::new(LocationTree::new(grid), prior, ServerConfig::default()),
/// ));
/// let server = TcpServer::bind("127.0.0.1:0", service, TransportConfig::default())?;
/// let client = TcpTransport::connect(server.local_addr())?;
/// # Ok(())
/// # }
/// ```
pub struct TcpServer {
    local_addr: SocketAddr,
    handle: Handle,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Bind a listener and start the reactor thread.
    ///
    /// Returns as soon as the socket is listening; any
    /// [`TransportConfig::warm_on_start`] plan runs concurrently on the
    /// dispatch pool while connections are already being accepted.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn MatrixService>,
        config: TransportConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let executor = Executor::new(config.io_poll_interval);
        let handle = executor.handle();
        let dispatch = Arc::new(ThreadPool::new(config.dispatch_threads.max(1)));
        if let Some(plan) = config.warm_on_start.clone() {
            let service = Arc::clone(&service);
            dispatch.execute(move || {
                let _ = warm(service.as_ref(), &plan);
            });
        }
        handle.spawn(AcceptTask {
            listener,
            handle: handle.clone(),
            service,
            dispatch,
            config: Arc::new(config),
        });
        let reactor = std::thread::Builder::new()
            .name("corgi-reactor".into())
            .spawn(move || executor.run())?;
        Ok(Self {
            local_addr,
            handle,
            reactor: Some(reactor),
        })
    }

    /// The bound address (useful with port 0 in tests and examples).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the reactor and join its thread.  Open connections are dropped;
    /// dispatch jobs already running finish first (the pool joins on drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.handle.shutdown();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Nonblocking accept loop: each accepted socket becomes a ConnectionTask.
struct AcceptTask {
    listener: TcpListener,
    handle: Handle,
    service: Arc<dyn MatrixService>,
    dispatch: Arc<ThreadPool>,
    config: Arc<TransportConfig>,
}

impl Future for AcceptTask {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let deadline = self.handle.sleep(self.config.handshake_timeout);
                    self.handle.spawn(ConnectionTask {
                        stream,
                        handle: self.handle.clone(),
                        service: Arc::clone(&self.service),
                        dispatch: Arc::clone(&self.dispatch),
                        config: Arc::clone(&self.config),
                        read_buf: Vec::new(),
                        write_queue: VecDeque::new(),
                        write_pos: 0,
                        pending: Vec::new(),
                        negotiated: false,
                        draining: false,
                        eof: false,
                        deadline,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.handle.park_io(cx.waker());
                    return Poll::Pending;
                }
                // Transient accept failures (e.g. aborted handshakes): retry
                // on the next tick rather than killing the listener.
                Err(_) => {
                    self.handle.park_io(cx.waker());
                    return Poll::Pending;
                }
            }
        }
    }
}

/// A reply being computed on the dispatch pool for one connection.
struct PendingReply {
    /// Echoed id for synthesizing an error if the job dies.
    request_id: u64,
    rx: oneshot::Receiver<Vec<u8>>,
}

/// One client connection: a manually-written state machine future.
struct ConnectionTask {
    stream: TcpStream,
    handle: Handle,
    service: Arc<dyn MatrixService>,
    dispatch: Arc<ThreadPool>,
    config: Arc<TransportConfig>,
    read_buf: Vec<u8>,
    /// Encoded frames awaiting the socket; `write_pos` is the offset into the
    /// front frame already written.
    write_queue: VecDeque<Vec<u8>>,
    write_pos: usize,
    pending: Vec<PendingReply>,
    negotiated: bool,
    /// Once set, the connection stops reading and closes after the queue
    /// flushes (used after transport-level errors and hello rejection).
    draining: bool,
    eof: bool,
    /// Handshake deadline, re-armed by [`ConnectionTask::begin_drain`] to cap
    /// the final flush; between negotiation and drain the connection lives
    /// until EOF.
    deadline: Sleep,
}

enum ReadOutcome {
    Progress,
    Idle,
    Eof,
}

impl ConnectionTask {
    /// Whether backpressure bounds forbid taking on more input right now.
    fn at_capacity(&self) -> bool {
        self.pending.len() >= self.config.max_inflight_per_connection
            || self.write_queue.len() >= self.config.write_queue_depth
    }

    /// High-water mark for buffered inbound bytes: one maximal frame plus a
    /// read chunk of slack.  Beyond it we stop draining the socket so TCP
    /// flow control pushes back on the peer instead of growing our heap.
    fn read_buffer_limit(&self) -> usize {
        self.config.max_inbound_frame + FRAME_HEADER_LEN + 4096
    }

    fn read_available(&mut self) -> ReadOutcome {
        let mut chunk = [0u8; 4096];
        let mut any = false;
        while self.read_buf.len() < self.read_buffer_limit() {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Eof,
            }
        }
        if any {
            ReadOutcome::Progress
        } else {
            ReadOutcome::Idle
        }
    }

    /// Write queued frames until the socket blocks.  Returns false when the
    /// peer is gone.
    fn flush(&mut self) -> bool {
        while let Some(front) = self.write_queue.front() {
            match self.stream.write(&front[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.write_pos += n;
                    if self.write_pos == front.len() {
                        self.write_queue.pop_front();
                        self.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    fn queue_frame(&mut self, frame: Vec<u8>) {
        self.write_queue.push_back(frame);
    }

    /// Stop reading and close once the write queue flushes, with a fresh
    /// deadline capping the drain (the handshake deadline this field
    /// previously held is long expired on an established connection).
    fn begin_drain(&mut self) {
        self.draining = true;
        self.deadline = self.handle.sleep(self.config.handshake_timeout);
    }

    fn queue_transport_error(&mut self, error: ServiceError) {
        // No request id was decodable; 0 is the documented "no request" id.
        let envelope = ResponseEnvelope::error(0, error);
        self.queue_frame(encode_json_frame(FrameKind::Response, &envelope));
        self.begin_drain();
    }

    /// Decode and dispatch every complete frame in the read buffer.  Returns
    /// true if any frame was consumed.
    fn process_frames(&mut self) -> bool {
        let mut any = false;
        while !self.draining
            && self.pending.len() < self.config.max_inflight_per_connection
            && self.write_queue.len() < self.config.write_queue_depth
        {
            match try_decode_frame(&mut self.read_buf, self.config.max_inbound_frame) {
                Ok(None) => break,
                Ok(Some((kind, payload))) => {
                    any = true;
                    self.handle_frame(kind, &payload);
                }
                Err(e) => {
                    any = true;
                    self.queue_transport_error(e.into());
                    break;
                }
            }
        }
        any
    }

    fn handle_frame(&mut self, kind: FrameKind, payload: &[u8]) {
        match kind {
            FrameKind::Request => {
                let envelope: RequestEnvelope = match parse_payload(payload) {
                    Ok(envelope) => envelope,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                let (tx, rx) = oneshot::channel();
                self.pending.push(PendingReply {
                    request_id: envelope.request_id,
                    rx,
                });
                let service = Arc::clone(&self.service);
                self.dispatch.execute(move || {
                    // Envelope version check, service stack, serialization:
                    // all off the reactor thread.
                    let reply = service.handle_envelope(&envelope);
                    let _ = tx.send(encode_json_frame(FrameKind::Response, &reply));
                });
            }
            FrameKind::Warm => {
                let plan: WarmRequest = match parse_payload(payload) {
                    Ok(plan) => plan,
                    Err(e) => {
                        self.queue_transport_error(e);
                        return;
                    }
                };
                // Every key is a full forest generation: refuse plans large
                // enough to pin the dispatch pool (one small frame could
                // otherwise schedule hours of solves).  The deduplicated
                // request list is the actual work, not the raw product.
                let keys = plan.requests().len();
                if keys > self.config.max_warm_keys {
                    self.queue_transport_error(ServiceError::transport(format!(
                        "warm plan names {keys} keys, exceeding the {}-key limit",
                        self.config.max_warm_keys
                    )));
                    return;
                }
                let (tx, rx) = oneshot::channel();
                self.pending.push(PendingReply { request_id: 0, rx });
                let service = Arc::clone(&self.service);
                self.dispatch.execute(move || {
                    let report = warm(service.as_ref(), &plan);
                    let _ = tx.send(encode_json_frame(FrameKind::WarmReply, &report));
                });
            }
            // A second hello, or a server-to-client kind from a client: the
            // peer is confused; tell it so and hang up.
            FrameKind::Hello
            | FrameKind::HelloReply
            | FrameKind::Response
            | FrameKind::WarmReply => {
                self.queue_transport_error(ServiceError::transport(format!(
                    "unexpected {kind:?} frame after negotiation"
                )));
            }
        }
    }

    /// Move finished dispatch jobs from `pending` into the write queue.
    fn collect_completions(&mut self, cx: &mut Context<'_>) -> bool {
        let mut any = false;
        let mut completed: Vec<(usize, Vec<u8>)> = Vec::new();
        for (index, reply) in self.pending.iter_mut().enumerate() {
            match Pin::new(&mut reply.rx).poll(cx) {
                Poll::Ready(Ok(frame)) => completed.push((index, frame)),
                Poll::Ready(Err(_)) => {
                    // The dispatch job died (worker panic): the request must
                    // still get an answer.
                    let envelope = ResponseEnvelope::error(
                        reply.request_id,
                        ServiceError::new(
                            ServiceErrorKind::Internal,
                            "request handler panicked on the dispatch pool",
                        ),
                    );
                    completed.push((index, encode_json_frame(FrameKind::Response, &envelope)));
                }
                Poll::Pending => {}
            }
        }
        for (index, frame) in completed.into_iter().rev() {
            self.pending.remove(index);
            self.queue_frame(frame);
            any = true;
        }
        any
    }

    fn handshake_step(&mut self, cx: &mut Context<'_>) -> Option<Poll<()>> {
        // Bound the handshake (and any half-sent first frame) by the deadline.
        if Pin::new(&mut self.deadline).poll(cx).is_ready() {
            return Some(Poll::Ready(()));
        }
        match self.read_available() {
            ReadOutcome::Eof => return Some(Poll::Ready(())),
            ReadOutcome::Progress | ReadOutcome::Idle => {}
        }
        match try_decode_frame(&mut self.read_buf, self.config.max_inbound_frame) {
            Ok(None) => {
                self.handle.park_io(cx.waker());
                Some(Poll::Pending)
            }
            Ok(Some((FrameKind::Hello, payload))) => {
                match parse_payload::<HelloFrame>(&payload) {
                    Ok(hello) if PROTOCOL_VERSION.is_compatible_with(&hello.version) => {
                        let reply = HelloReply::Accepted {
                            version: PROTOCOL_VERSION,
                            grid: *self.service.tree().grid().config(),
                            prior: (*self.service.prior()).clone(),
                        };
                        self.queue_frame(encode_json_frame(FrameKind::HelloReply, &reply));
                        self.negotiated = true;
                        None // fall through into the serving loop
                    }
                    Ok(hello) => {
                        let reply =
                            HelloReply::Rejected(ServiceError::unsupported_version(hello.version));
                        self.queue_frame(encode_json_frame(FrameKind::HelloReply, &reply));
                        self.begin_drain();
                        None
                    }
                    Err(e) => {
                        self.queue_frame(encode_json_frame(
                            FrameKind::HelloReply,
                            &HelloReply::Rejected(e),
                        ));
                        self.begin_drain();
                        None
                    }
                }
            }
            Ok(Some((kind, _))) => {
                self.queue_frame(encode_json_frame(
                    FrameKind::HelloReply,
                    &HelloReply::Rejected(ServiceError::transport(format!(
                        "expected a Hello frame, got {kind:?}"
                    ))),
                ));
                self.draining = true;
                None
            }
            Err(e) => {
                self.queue_frame(encode_json_frame(
                    FrameKind::HelloReply,
                    &HelloReply::Rejected(e.into()),
                ));
                self.draining = true;
                None
            }
        }
    }
}

impl Future for ConnectionTask {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.handle.is_shutdown() {
            return Poll::Ready(());
        }
        if !this.negotiated && !this.draining {
            if let Some(poll) = this.handshake_step(cx) {
                return poll;
            }
        }
        loop {
            let mut progress = false;

            if !this.draining {
                progress |= this.collect_completions(cx);
            }
            if !this.flush() {
                return Poll::Ready(()); // peer gone
            }
            if this.draining {
                if this.write_queue.is_empty() {
                    return Poll::Ready(());
                }
                // Bounded drain: begin_drain re-armed the deadline, capping
                // how long a slow peer may take the final error frame.
                if Pin::new(&mut this.deadline).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
                this.handle.park_io(cx.waker());
                return Poll::Pending;
            }
            if !this.eof && !this.at_capacity() {
                match this.read_available() {
                    ReadOutcome::Eof => this.eof = true,
                    ReadOutcome::Progress => progress = true,
                    ReadOutcome::Idle => {}
                }
            }
            progress |= this.process_frames();
            if this.eof && this.pending.is_empty() && this.write_queue.is_empty() {
                return Poll::Ready(());
            }
            if !progress {
                // Completions wake us via their oneshot wakers; socket
                // readiness arrives with the next reactor tick.
                this.handle.park_io(cx.waker());
                return Poll::Pending;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Tunables of a [`TcpTransport`] client connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Largest accepted frame payload from the server.  Responses carry whole
    /// privacy forests, so this is generous by default (64 MiB).
    pub max_frame: usize,
    /// Socket read timeout per blocking receive; bounds how long a truncated
    /// or withheld response can stall a caller.  `None` waits forever.
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_frame: 64 * 1024 * 1024,
            read_timeout: Some(Duration::from_secs(600)),
        }
    }
}

/// Client side of the framed envelope transport: a [`MatrixService`] whose
/// requests cross a process boundary over TCP.
///
/// Connecting performs the hello exchange, from which the transport learns the
/// server's protocol version, grid configuration (rebuilt into a local
/// [`LocationTree`]) and public prior — so a [`crate::CorgiClient`] can run
/// against a `TcpTransport` exactly as it does against an in-process stack.
///
/// The connection is a `Mutex`-serialized request/response channel: one
/// request is in flight at a time per transport (clone-free sharing across
/// threads works, callers just serialize).  Pipelining is a property of the
/// *server*; concurrent client load is modelled with multiple transports, as
/// in the loopback tests and benches.
pub struct TcpTransport {
    conn: Mutex<ClientConn>,
    tree: Arc<LocationTree>,
    prior: Arc<PriorDistribution>,
    server_version: ProtocolVersion,
    next_request_id: AtomicU64,
    max_frame: usize,
}

/// Connection state behind the transport's mutex.
struct ClientConn {
    stream: TcpStream,
    /// Set after a transport-level failure (timeout, truncated or
    /// uncorrelated frame): the request/response stream may be
    /// desynchronized — a late response could be mistaken for the next
    /// call's reply — so every further call fails fast until the caller
    /// reconnects.
    poisoned: bool,
}

impl ClientConn {
    /// One request/response exchange.  Any transport-level failure — send
    /// failure, timeout, truncated frame — poisons the connection: a reply to
    /// this call may still arrive later and would desynchronize every
    /// subsequent exchange.
    fn exchange<T: Serialize>(
        &mut self,
        kind: FrameKind,
        value: &T,
        max_frame: usize,
    ) -> Result<(FrameKind, Vec<u8>), ServiceError> {
        if self.poisoned {
            return Err(ServiceError::transport(
                "connection poisoned by an earlier stream desynchronization; reconnect",
            ));
        }
        let result = write_frame_blocking(&mut self.stream, kind, value)
            .and_then(|()| read_frame_blocking(&mut self.stream, max_frame));
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }
}

impl TcpTransport {
    /// Connect with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect, perform the version handshake and mirror the server's tree.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServiceError::transport(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(|e| ServiceError::transport(format!("setting read timeout: {e}")))?;
        let mut stream = stream;
        write_frame_blocking(
            &mut stream,
            FrameKind::Hello,
            &HelloFrame {
                version: PROTOCOL_VERSION,
            },
        )?;
        let (kind, payload) = read_frame_blocking(&mut stream, config.max_frame)?;
        if kind != FrameKind::HelloReply {
            return Err(ServiceError::transport(format!(
                "expected a HelloReply frame, got {kind:?}"
            )));
        }
        match parse_payload::<HelloReply>(&payload)? {
            HelloReply::Accepted {
                version,
                grid,
                prior,
            } => {
                let grid = HexGrid::new(grid).map_err(|e| {
                    ServiceError::transport(format!("server sent an invalid grid config: {e}"))
                })?;
                Ok(Self {
                    conn: Mutex::new(ClientConn {
                        stream,
                        poisoned: false,
                    }),
                    tree: Arc::new(LocationTree::new(grid)),
                    prior: Arc::new(prior),
                    server_version: version,
                    next_request_id: AtomicU64::new(1),
                    max_frame: config.max_frame,
                })
            }
            HelloReply::Rejected(error) => Err(error),
        }
    }

    /// Protocol version the server negotiated.
    pub fn server_version(&self) -> ProtocolVersion {
        self.server_version
    }

    /// Ask the server to precompute its cache over a `(privacy_level, δ)`
    /// grid; blocks until the server reports back.
    pub fn warm(&self, plan: &WarmRequest) -> Result<WarmReport, ServiceError> {
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(FrameKind::Warm, plan, self.max_frame)?;
        match kind {
            FrameKind::WarmReply => parse_payload(&payload),
            FrameKind::Response => {
                // The server refused at the transport level (e.g. a plan
                // larger than its inbound frame limit) and is closing.
                conn.poisoned = true;
                let envelope: ResponseEnvelope = parse_payload(&payload)?;
                Err(envelope
                    .into_result()
                    .err()
                    .unwrap_or_else(|| ServiceError::transport("unexpected forest reply")))
            }
            other => {
                conn.poisoned = true;
                Err(ServiceError::transport(format!(
                    "expected a WarmReply frame, got {other:?}"
                )))
            }
        }
    }
}

impl MatrixService for TcpTransport {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let envelope = RequestEnvelope::new(request_id, request);
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let (kind, payload) = conn.exchange(FrameKind::Request, &envelope, self.max_frame)?;
        if kind != FrameKind::Response {
            conn.poisoned = true;
            return Err(ServiceError::transport(format!(
                "expected a Response frame, got {kind:?}"
            )));
        }
        let reply: ResponseEnvelope = match parse_payload(&payload) {
            Ok(reply) => reply,
            Err(e) => {
                conn.poisoned = true;
                return Err(e);
            }
        };
        if reply.request_id != request_id {
            // Either a transport-level error (id 0, server closing) or a
            // desynchronized stream; both poison the connection.  Surface the
            // carried error if there is one.
            conn.poisoned = true;
            return match reply.into_result() {
                Err(error) => Err(error),
                Ok(_) => Err(ServiceError::transport(
                    "response correlates to a different request",
                )),
            };
        }
        reply.into_result()
    }

    fn tree(&self) -> Arc<LocationTree> {
        Arc::clone(&self.tree)
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        Arc::clone(&self.prior)
    }
}

/// Serialize and send one frame over a blocking stream.
fn write_frame_blocking<T: Serialize>(
    stream: &mut TcpStream,
    kind: FrameKind,
    value: &T,
) -> Result<(), ServiceError> {
    let frame = encode_json_frame(kind, value);
    stream
        .write_all(&frame)
        .map_err(|e| ServiceError::transport(format!("send failed: {e}")))
}

/// Receive one frame from a blocking stream (honouring its read timeout).
fn read_frame_blocking(
    stream: &mut TcpStream,
    max_payload: usize,
) -> Result<(FrameKind, Vec<u8>), ServiceError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_mapped(stream, &mut header)?;
    let (kind, len) = parse_frame_header(&header, max_payload)?;
    let mut payload = vec![0u8; len];
    read_exact_mapped(stream, &mut payload)?;
    Ok((kind, payload))
}

fn read_exact_mapped(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ServiceError> {
    stream.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ServiceError::transport("timed out waiting for a frame")
        }
        io::ErrorKind::UnexpectedEof => {
            ServiceError::transport("connection closed mid-frame (truncated frame)")
        }
        _ => ServiceError::transport(format!("receive failed: {e}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_the_incremental_decoder() {
        let payload = br#"{"hello":"world"}"#;
        let mut buf = encode_frame(FrameKind::Request, payload);
        // Arrives in two halves: first read yields nothing, second completes.
        let tail = buf.split_off(5);
        let mut incoming = buf;
        assert_eq!(try_decode_frame(&mut incoming, 1024), Ok(None));
        incoming.extend_from_slice(&tail);
        let (kind, got) = try_decode_frame(&mut incoming, 1024).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(got, payload);
        assert!(incoming.is_empty(), "frame bytes fully consumed");
    }

    #[test]
    fn decoder_separates_back_to_back_frames() {
        let mut buf = encode_frame(FrameKind::Request, b"one");
        buf.extend_from_slice(&encode_frame(FrameKind::Warm, b"two"));
        let (k1, p1) = try_decode_frame(&mut buf, 1024).unwrap().unwrap();
        let (k2, p2) = try_decode_frame(&mut buf, 1024).unwrap().unwrap();
        assert_eq!((k1, p1.as_slice()), (FrameKind::Request, b"one".as_slice()));
        assert_eq!((k2, p2.as_slice()), (FrameKind::Warm, b"two".as_slice()));
        assert_eq!(try_decode_frame(&mut buf, 1024), Ok(None));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = b"XX\x02\x00\x00\x00\x00".to_vec();
        assert_eq!(
            try_decode_frame(&mut buf, 1024),
            Err(FrameError::BadMagic(*b"XX"))
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = encode_frame(FrameKind::Request, b"x");
        buf[2] = 250;
        assert_eq!(
            try_decode_frame(&mut buf, 1024),
            Err(FrameError::UnknownKind(250))
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        // A 4 GiB length prefix must be refused from the 7 header bytes alone.
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(FrameKind::Request as u8);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = try_decode_frame(&mut buf, 64 * 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u32::MAX as usize,
                max: 64 * 1024
            }
        );
        let service_error: ServiceError = err.into();
        assert_eq!(service_error.kind, ServiceErrorKind::Transport);
    }

    #[test]
    fn frame_errors_map_to_transport_service_errors() {
        for e in [
            FrameError::BadMagic(*b"no"),
            FrameError::UnknownKind(9),
            FrameError::Oversized { len: 10, max: 5 },
        ] {
            let s: ServiceError = e.into();
            assert_eq!(s.kind, ServiceErrorKind::Transport);
            assert!(!s.message.is_empty());
        }
    }

    #[test]
    fn hello_frames_roundtrip_through_json() {
        let hello = HelloFrame {
            version: PROTOCOL_VERSION,
        };
        let json = serde_json::to_string(&hello).unwrap();
        let back: HelloFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hello);

        let rejected = HelloReply::Rejected(ServiceError::unsupported_version(ProtocolVersion {
            major: 9,
            minor: 0,
        }));
        let json = serde_json::to_string(&rejected).unwrap();
        let back: HelloReply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rejected);
    }
}
