//! CORGI core: user customizable and robust Geo-Indistinguishability.
//!
//! This crate implements the algorithms of the paper *"User Customizable and
//! Robust Geo-Indistinguishability for Location Privacy"* (EDBT 2023):
//!
//! | Paper section | Module |
//! |---|---|
//! | §3.1 Location tree | [`tree`] |
//! | §3.2 Customization policies | [`policy`] |
//! | §2.1 / §4.1 Obfuscation matrix, ε-Geo-Ind | [`matrix`], [`geoind`] |
//! | §4.1 / §4.2 LP formulation + graph approximation | [`formulation`] |
//! | §4.3 Matrix pruning | [`prune`] |
//! | §4.4 Robust matrix generation (Algorithm 1) | [`robust`] |
//! | §4.5 Matrix precision reduction (Algorithm 2) | [`precision`] |
//! | §2.1 Utility / quality loss (Eq. 3, 6, 7) | [`utility`] |
//! | Planar-Laplace baseline (Andrés et al., CCS 2013) | [`laplace`] |
//! | Bayesian adversary metrics (extension) | [`adversary`] |
//!
//! The crate is deliberately independent of any dataset: priors and location
//! attributes are plain inputs, produced in this workspace by `corgi-datagen`
//! and consumed through the [`policy::AttributeProvider`] trait.

#![warn(missing_docs)]

pub mod adversary;
mod error;
pub mod formulation;
pub mod geoind;
pub mod laplace;
pub mod matrix;
pub mod policy;
pub mod precision;
pub mod prune;
pub mod robust;
pub mod tree;
pub mod utility;

pub use corgi_lp::{InteriorPointOptions, KernelStrategy, WarmStart};
pub use error::CorgiError;
pub use formulation::{ObfuscationProblem, SolverKind};
pub use geoind::GeoIndReport;
pub use matrix::ObfuscationMatrix;
pub use policy::{AttributeProvider, AttributeValue, ComparisonOp, Policy, Predicate};
pub use precision::precision_reduction;
pub use prune::prune_matrix;
pub use robust::{
    generate_nonrobust_matrix, generate_robust_matrix, generate_robust_matrix_warm, RobustConfig,
    RobustRun,
};
pub use tree::{LocationTree, Subtree};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CorgiError>;
