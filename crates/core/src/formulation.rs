//! LP formulation of the obfuscation-matrix generation problem (Section 4.1–4.2).
//!
//! The decision variables are the `K × K` entries of the obfuscation matrix
//! `Z⁰ = {z_{k,l}}` over the leaf cells of one privacy-forest subtree.  The LP is
//!
//! ```text
//! minimize   Δ(Z⁰) = Σ_q Pr(Q = v_q) Σ_k Pr(X = v_k) Σ_l z_{k,l} · U(v_k, v_l, v_q)   (Eq. 6–7)
//! subject to z_{i,l} − e^{ε_{i,j}·d_{i,j}} · z_{j,l} ≤ 0   for constrained pairs (i,j), all l  (Eq. 4 / 13 / 15)
//!            Σ_l z_{k,l} = 1                               for every row k               (Eq. 5)
//!            z ≥ 0
//! ```
//!
//! With the graph approximation of Section 4.2 the constrained pairs are only the
//! neighboring peers of the 12-neighbor mobility graph; otherwise all ordered
//! pairs are constrained.  The per-pair budget `ε_{i,j}` is the full ε for the
//! non-robust problem (Eq. 8) and `ε − ε′_{i,j}` for the robust problem (Eq. 16).

use crate::{utility, CorgiError, LocationTree, ObfuscationMatrix, Result, Subtree};
use corgi_graph::HexMobilityGraph;
use corgi_hexgrid::CellId;
use corgi_lp::{
    BlockAngularSolver, ConstraintSense, InteriorPointOptions, InteriorPointSolver, LpProblem,
    LpSolver, SimplexSolver, SolveStatus, WarmStart,
};
use serde::{Deserialize, Serialize};

/// Which LP solver to use for matrix generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Pick automatically: the block-angular interior-point method, which is the
    /// right choice for every realistic problem size.
    Auto,
    /// Dense two-phase simplex (exact; only for small K).
    Simplex,
    /// General dense interior-point method (ignores the block structure).
    InteriorPoint,
    /// Block-angular interior-point method (exploits the per-column structure).
    BlockAngular,
}

/// An instance of the obfuscation-matrix generation problem for one subtree.
#[derive(Debug, Clone)]
pub struct ObfuscationProblem {
    cells: Vec<CellId>,
    distances: Vec<Vec<f64>>,
    prior: Vec<f64>,
    target_indices: Vec<usize>,
    target_probs: Vec<f64>,
    epsilon: f64,
    /// Ordered pairs `(i, j)` for which a Geo-Ind constraint is generated.
    constrained_pairs: Vec<(usize, usize)>,
    /// Whether the graph approximation is in effect (affects reporting only).
    graph_approximation: bool,
}

impl ObfuscationProblem {
    /// Build a problem for the leaves of `subtree`.
    ///
    /// * `prior` — prior probabilities of the subtree leaves (same order as
    ///   `subtree.leaves()`), re-normalized internally.
    /// * `targets` — indices (into the subtree leaves) of the places of interest
    ///   `Q`; they are weighted by the prior restricted to the targets, matching
    ///   the paper's use of check-in-derived target distributions.
    /// * `epsilon` — privacy budget in 1/km.
    /// * `use_graph_approximation` — enforce Geo-Ind only on the 12-neighbor
    ///   mobility graph (Section 4.2) instead of all pairs.
    pub fn new(
        tree: &LocationTree,
        subtree: &Subtree,
        prior: &[f64],
        targets: &[usize],
        epsilon: f64,
        use_graph_approximation: bool,
    ) -> Result<Self> {
        Self::from_leaves(
            tree,
            subtree.leaves(),
            prior,
            targets,
            epsilon,
            use_graph_approximation,
        )
    }

    /// Build a problem over an explicit set of leaf cells (not necessarily a full
    /// subtree).  Used by the experiment harness to sweep the number of locations
    /// (the paper's Fig. 12(b) and Fig. 14 use 28–70 locations).
    pub fn from_leaves(
        tree: &LocationTree,
        leaves: &[CellId],
        prior: &[f64],
        targets: &[usize],
        epsilon: f64,
        use_graph_approximation: bool,
    ) -> Result<Self> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(CorgiError::InvalidEpsilon(epsilon));
        }
        if leaves.iter().any(|c| !c.is_leaf()) {
            return Err(CorgiError::InvalidMatrix(
                "obfuscation problems are defined over leaf cells".to_string(),
            ));
        }
        let cells = leaves.to_vec();
        let k = cells.len();
        if prior.len() != k {
            return Err(CorgiError::InvalidPrior(format!(
                "prior has {} entries for {k} cells",
                prior.len()
            )));
        }
        if prior.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(CorgiError::InvalidPrior(
                "prior contains negative or non-finite mass".to_string(),
            ));
        }
        let total: f64 = prior.iter().sum();
        if total <= 0.0 {
            return Err(CorgiError::InvalidPrior("prior mass is zero".to_string()));
        }
        let prior: Vec<f64> = prior.iter().map(|p| p / total).collect();
        if targets.is_empty() {
            return Err(CorgiError::InvalidPrior(
                "at least one target location is required".to_string(),
            ));
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= k) {
            return Err(CorgiError::InvalidPrior(format!(
                "target index {bad} out of range for {k} cells"
            )));
        }
        // Target distribution Pr(Q = q): proportional to the prior of the target
        // cells (uniform fallback if the targets carry no prior mass).
        let raw: Vec<f64> = targets.iter().map(|&t| prior[t]).collect();
        let raw_total: f64 = raw.iter().sum();
        let target_probs: Vec<f64> = if raw_total > 0.0 {
            raw.into_iter().map(|p| p / raw_total).collect()
        } else {
            vec![1.0 / targets.len() as f64; targets.len()]
        };

        let distances = tree.distance_matrix(&cells);
        let constrained_pairs = if use_graph_approximation {
            let graph = HexMobilityGraph::new(tree.grid(), &cells);
            let mut pairs = Vec::new();
            for (i, j) in graph.neighbor_pairs() {
                pairs.push((i, j));
                pairs.push((j, i));
            }
            pairs
        } else {
            (0..k)
                .flat_map(|i| (0..k).filter(move |&j| j != i).map(move |j| (i, j)))
                .collect()
        };

        Ok(Self {
            cells,
            distances,
            prior,
            target_indices: targets.to_vec(),
            target_probs,
            epsilon,
            constrained_pairs,
            graph_approximation: use_graph_approximation,
        })
    }

    /// Number of locations `K`.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// The cells in matrix order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// The (normalized) prior over the cells.
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// Indices (into [`ObfuscationProblem::cells`]) of the target locations `Q`
    /// weighted by the quality-loss objective.
    pub fn targets(&self) -> &[usize] {
        &self.target_indices
    }

    /// The pairwise distance matrix (km).
    pub fn distances(&self) -> &[Vec<f64>] {
        &self.distances
    }

    /// The privacy budget ε (1/km).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Whether the graph approximation is enabled.
    pub fn uses_graph_approximation(&self) -> bool {
        self.graph_approximation
    }

    /// The ordered pairs carrying Geo-Ind constraints.
    pub fn constrained_pairs(&self) -> &[(usize, usize)] {
        &self.constrained_pairs
    }

    /// Number of Geo-Ind inequality constraints in the LP
    /// (`|constrained pairs| · K`); this is the quantity plotted in Fig. 10(b).
    pub fn num_geo_ind_constraints(&self) -> usize {
        self.constrained_pairs.len() * self.size()
    }

    /// The linear cost coefficient `c_{k,l}` of entry `z_{k,l}`:
    /// `Pr(X = v_k) · Σ_q Pr(Q = v_q) · |d(v_k, v_q) − d(v_l, v_q)|`.
    pub fn cost_matrix(&self) -> Vec<f64> {
        let k = self.size();
        let mut costs = vec![0.0; k * k];
        for real in 0..k {
            for reported in 0..k {
                let mut expected_error = 0.0;
                for (t_pos, &target) in self.target_indices.iter().enumerate() {
                    expected_error += self.target_probs[t_pos]
                        * utility::estimation_error(
                            self.distances[real][target],
                            self.distances[reported][target],
                        );
                }
                costs[real * k + reported] = self.prior[real] * expected_error;
            }
        }
        costs
    }

    /// Quality loss Δ(Z) of a matrix under this problem's priors and targets
    /// (Eq. 7) — identical to the LP objective evaluated at the matrix.
    pub fn quality_loss(&self, matrix: &ObfuscationMatrix) -> f64 {
        let costs = self.cost_matrix();
        let k = self.size();
        let mut total = 0.0;
        for i in 0..k {
            for j in 0..k {
                total += costs[i * k + j] * matrix.get(i, j);
            }
        }
        total
    }

    /// Build the LP of Eq. 8 (non-robust, `rpb = None`) or Eq. 16 (robust, with a
    /// reserved-privacy-budget matrix `rpb[i][j] = ε′_{i,j}`).
    ///
    /// Returns the problem plus the per-column variable blocks used by the
    /// block-angular solver.
    pub fn build_lp(&self, rpb: Option<&[Vec<f64>]>) -> Result<(LpProblem, Vec<Vec<usize>>)> {
        let k = self.size();
        let var = |real: usize, reported: usize| real * k + reported;
        let mut lp = LpProblem::new(k * k);
        lp.set_objective_vector(self.cost_matrix())
            .map_err(CorgiError::from)?;

        // Row-stochasticity (Eq. 5).
        for real in 0..k {
            let coeffs = (0..k).map(|rep| (var(real, rep), 1.0)).collect();
            lp.add_constraint(coeffs, ConstraintSense::Eq, 1.0)
                .map_err(CorgiError::from)?;
        }

        // Geo-Ind constraints (Eq. 4 with the effective budget of Eq. 13/15).
        for &(i, j) in &self.constrained_pairs {
            let eps_reserved = rpb.map_or(0.0, |m| m[i][j]);
            let effective = effective_epsilon(self.epsilon, eps_reserved);
            let bound = (effective * self.distances[i][j]).exp();
            for l in 0..k {
                lp.add_constraint(
                    vec![(var(i, l), 1.0), (var(j, l), -bound)],
                    ConstraintSense::Le,
                    0.0,
                )
                .map_err(CorgiError::from)?;
            }
        }

        // One block per reported-location column: {z_{i,l} : i = 0..K} for fixed l.
        let blocks: Vec<Vec<usize>> = (0..k)
            .map(|l| (0..k).map(|i| var(i, l)).collect())
            .collect();
        Ok((lp, blocks))
    }

    /// Interior-point options tuned for this problem's block structure.
    ///
    /// The library defaults (blocked Cholesky kernels, sparse Schur assembly)
    /// are right for every K the paper exercises.  The worker count of the
    /// parallel block kernels is read from the `CORGI_LP_THREADS` environment
    /// variable: unset or `1` keeps the bit-exact serial path, `0` uses all
    /// available cores, any other number is a literal thread count.
    pub fn solver_options(&self) -> InteriorPointOptions {
        let mut options = InteriorPointOptions::default();
        if let Some(threads) = std::env::var("CORGI_LP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            options.threads = threads;
        }
        options
    }

    /// Solve the LP and return the resulting obfuscation matrix.
    ///
    /// The uniform matrix is strictly feasible for every obfuscation LP (all
    /// Geo-Ind bounds exceed 1), so if the iterative solver stops short of full
    /// feasibility the result is repaired by blending the returned point towards
    /// the uniform matrix just enough to restore feasibility — trading a small,
    /// measured amount of optimality for a guaranteed ε-Geo-Ind matrix.
    pub fn solve(&self, rpb: Option<&[Vec<f64>]>, solver: SolverKind) -> Result<ObfuscationMatrix> {
        self.solve_with_options(rpb, solver, self.solver_options())
    }

    /// [`ObfuscationProblem::solve`] with explicit interior-point options, for
    /// callers that need a non-default kernel strategy, iteration limit or
    /// tolerance — e.g. capped-iteration perf comparisons between
    /// `KernelStrategy::Blocked` and `KernelStrategy::Reference`.  (The
    /// simplex path ignores the options.)
    pub fn solve_with_options(
        &self,
        rpb: Option<&[Vec<f64>]>,
        solver: SolverKind,
        options: InteriorPointOptions,
    ) -> Result<ObfuscationMatrix> {
        self.solve_with_options_warm(rpb, solver, options, None)
            .map(|(matrix, _)| matrix)
    }

    /// [`ObfuscationProblem::solve_with_options`], warm-started from a
    /// converged iterate of a nearby solve (a grid-adjacent `(privacy_level,
    /// δ)` problem, or the previous refinement iteration of Algorithm 1).
    ///
    /// Returns the matrix together with this solve's own converged iterate
    /// (`None` when the solver is the simplex, the solve did not reach
    /// `Optimal`, or the point needed repair).  An unusable warm start — wrong
    /// problem shape, non-finite entries — silently degrades to a cold solve.
    pub fn solve_with_options_warm(
        &self,
        rpb: Option<&[Vec<f64>]>,
        solver: SolverKind,
        options: InteriorPointOptions,
        warm: Option<&WarmStart>,
    ) -> Result<(ObfuscationMatrix, Option<WarmStart>)> {
        let (lp, blocks) = self.build_lp(rpb)?;
        let mut solution = match solver {
            SolverKind::Simplex => SimplexSolver::new().solve(&lp),
            SolverKind::InteriorPoint => {
                InteriorPointSolver::new(options).solve_with_warm(&lp, warm)
            }
            SolverKind::Auto | SolverKind::BlockAngular => {
                BlockAngularSolver::new(blocks, options).solve_with_warm(&lp, warm)
            }
        }
        .map_err(CorgiError::from)?;
        if !solution.is_usable() {
            return Err(CorgiError::Solver(match solution.status {
                SolveStatus::Infeasible => "obfuscation LP is infeasible".to_string(),
                _ => "obfuscation LP is unbounded (malformed costs)".to_string(),
            }));
        }
        let mut warm_out = solution.warm.take();
        let k = self.size();
        let mut x = solution.x;
        if x.len() != k * k || x.iter().any(|v| !v.is_finite()) {
            // Numerical breakdown: start the repair from the uniform matrix.
            x = vec![1.0 / k as f64; k * k];
        }
        // An interior-point solve converged to `options.tolerance` leaves
        // residuals of that order, so the repair gate scales with it (floored
        // at the historical 1e-7 for full-tolerance solves).  Without the
        // scaling, every relaxed-tolerance solve of Algorithm 1's intermediate
        // refinements would be "repaired" — blending the matrix and, worse,
        // discarding the converged iterate that warm-starts the next solve.
        let violation_gate = (10.0 * options.tolerance).max(1e-7);
        if solution.status != SolveStatus::Optimal || lp.max_violation(&x) > violation_gate {
            // A repaired point is no longer the solver's converged iterate;
            // seeding a neighbour from it could poison that solve.
            warm_out = None;
            x = self.repair_towards_uniform(&lp, x)?;
        }
        let matrix = ObfuscationMatrix::from_lp_solution(self.cells.clone(), x)?;
        Ok((matrix, warm_out))
    }

    /// Blend a candidate solution towards the (strictly feasible) uniform matrix
    /// until every LP constraint is satisfied.
    fn repair_towards_uniform(&self, lp: &LpProblem, x: Vec<f64>) -> Result<Vec<f64>> {
        let k = self.size();
        let uniform = 1.0 / k as f64;
        for &theta in &[0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1.0] {
            let blended: Vec<f64> = x
                .iter()
                .map(|&v| (1.0 - theta) * v.max(0.0) + theta * uniform)
                .collect();
            if lp.max_violation(&blended) <= 1e-7 {
                return Ok(blended);
            }
        }
        Err(CorgiError::Solver(
            "could not repair the LP solution into a feasible matrix".to_string(),
        ))
    }
}

/// The effective privacy budget `ε − ε′` used in the robust constraints,
/// clamped to stay strictly positive (the paper does not discuss the corner case
/// where the reserved budget exceeds ε; clamping keeps the LP feasible and errs
/// on the side of a *stricter* constraint never being relaxed).
pub fn effective_epsilon(epsilon: f64, reserved: f64) -> f64 {
    const MIN_FRACTION: f64 = 0.05;
    (epsilon - reserved).max(epsilon * MIN_FRACTION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geoind;
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn tree() -> LocationTree {
        LocationTree::new(HexGrid::new(HexGridConfig::san_francisco()).unwrap())
    }

    fn problem(k_level: u8, graph_approx: bool) -> (LocationTree, ObfuscationProblem) {
        let t = tree();
        let subtree = t.privacy_forest(k_level).unwrap()[0].clone();
        let k = subtree.leaf_count();
        let prior: Vec<f64> = (0..k).map(|i| 1.0 + (i % 5) as f64).collect();
        let targets: Vec<usize> = (0..k).step_by(3).collect();
        let p =
            ObfuscationProblem::new(&t, &subtree, &prior, &targets, 15.0, graph_approx).unwrap();
        (t, p)
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let t = tree();
        let subtree = t.privacy_forest(1).unwrap()[0].clone();
        let prior = vec![1.0; 7];
        assert!(matches!(
            ObfuscationProblem::new(&t, &subtree, &prior, &[0], 0.0, true),
            Err(CorgiError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            ObfuscationProblem::new(&t, &subtree, &[1.0; 6], &[0], 15.0, true),
            Err(CorgiError::InvalidPrior(_))
        ));
        assert!(matches!(
            ObfuscationProblem::new(&t, &subtree, &prior, &[], 15.0, true),
            Err(CorgiError::InvalidPrior(_))
        ));
        assert!(matches!(
            ObfuscationProblem::new(&t, &subtree, &prior, &[9], 15.0, true),
            Err(CorgiError::InvalidPrior(_))
        ));
        assert!(matches!(
            ObfuscationProblem::new(&t, &subtree, &[0.0; 7], &[0], 15.0, true),
            Err(CorgiError::InvalidPrior(_))
        ));
    }

    #[test]
    fn graph_approximation_reduces_constraints() {
        let (_t, with) = problem(2, true);
        let (_t, without) = problem(2, false);
        assert!(with.uses_graph_approximation());
        assert!(!without.uses_graph_approximation());
        assert_eq!(
            without.num_geo_ind_constraints(),
            geoind::full_constraint_count(49)
        );
        assert!(with.num_geo_ind_constraints() < without.num_geo_ind_constraints() / 3);
    }

    #[test]
    fn cost_matrix_has_zero_diagonal_contribution() {
        // Reporting the true location has zero estimation error, so c_{k,k} = 0.
        let (_t, p) = problem(1, true);
        let costs = p.cost_matrix();
        let k = p.size();
        for i in 0..k {
            assert!(costs[i * k + i].abs() < 1e-12);
        }
        // And some off-diagonal cost is strictly positive.
        assert!(costs.iter().any(|&c| c > 1e-9));
    }

    #[test]
    fn solved_matrix_is_stochastic_and_geo_ind() {
        let (_t, p) = problem(1, true);
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        matrix.check_stochastic(1e-6).unwrap();
        // The graph approximation is sufficient for all-pairs Geo-Ind (Theorem 4.1).
        let report = geoind::check_all_pairs(&matrix, p.distances(), p.epsilon(), 1e-6);
        assert!(
            report.is_satisfied(),
            "violations: {} / {} (worst {})",
            report.violated,
            report.total_constraints,
            report.worst_margin
        );
    }

    #[test]
    fn solvers_agree_on_small_instance() {
        // Use a moderate ε so the e^{ε·d} coefficients stay in a range where the
        // dense tableau simplex is numerically exact; it then serves as the
        // reference for both interior-point paths.  (At the paper's ε = 15/km the
        // coefficients reach ~10³–10⁶ and the production path is the IPM; the
        // simplex honestly reports the loss of optimality instead of returning an
        // infeasible point, see `SimplexSolver` docs.)
        let t = tree();
        let subtree = t.privacy_forest(1).unwrap()[0].clone();
        let prior: Vec<f64> = (0..7).map(|i| 1.0 + (i % 5) as f64).collect();
        let targets: Vec<usize> = (0..7).step_by(3).collect();
        let p = ObfuscationProblem::new(&t, &subtree, &prior, &targets, 3.0, true).unwrap();
        let simplex = p.solve(None, SolverKind::Simplex).unwrap();
        let block = p.solve(None, SolverKind::BlockAngular).unwrap();
        let general = p.solve(None, SolverKind::InteriorPoint).unwrap();
        let q_s = p.quality_loss(&simplex);
        let q_b = p.quality_loss(&block);
        let q_g = p.quality_loss(&general);
        assert!((q_s - q_b).abs() < 1e-3 * (1.0 + q_s), "{q_s} vs {q_b}");
        assert!((q_s - q_g).abs() < 1e-3 * (1.0 + q_s), "{q_s} vs {q_g}");
    }

    #[test]
    fn interior_point_paths_agree_at_paper_epsilon() {
        let (_t, p) = problem(1, true);
        let block = p.solve(None, SolverKind::BlockAngular).unwrap();
        let general = p.solve(None, SolverKind::InteriorPoint).unwrap();
        let q_b = p.quality_loss(&block);
        let q_g = p.quality_loss(&general);
        assert!((q_b - q_g).abs() < 1e-3 * (1.0 + q_b), "{q_b} vs {q_g}");
    }

    #[test]
    fn quality_loss_matches_lp_objective() {
        let (_t, p) = problem(1, true);
        let (lp, _) = p.build_lp(None).unwrap();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        let from_lp = lp.objective_value(matrix.data());
        let from_quality = p.quality_loss(&matrix);
        assert!((from_lp - from_quality).abs() < 1e-9);
    }

    #[test]
    fn larger_epsilon_means_lower_quality_loss() {
        // Weaker privacy (larger ε) gives the LP more freedom, so the optimal
        // quality loss cannot increase (paper Fig. 11).
        let t = tree();
        let subtree = t.privacy_forest(1).unwrap()[0].clone();
        let prior = vec![1.0; 7];
        let targets = [0usize, 3];
        let losses: Vec<f64> = [5.0, 10.0, 20.0]
            .iter()
            .map(|&eps| {
                let p = ObfuscationProblem::new(&t, &subtree, &prior, &targets, eps, true).unwrap();
                let m = p.solve(None, SolverKind::Auto).unwrap();
                p.quality_loss(&m)
            })
            .collect();
        assert!(losses[0] >= losses[1] - 1e-6);
        assert!(losses[1] >= losses[2] - 1e-6);
    }

    #[test]
    fn effective_epsilon_is_clamped() {
        assert_eq!(effective_epsilon(10.0, 2.0), 8.0);
        assert!((effective_epsilon(10.0, 20.0) - 0.5).abs() < 1e-12);
        assert!(effective_epsilon(10.0, 9.99) > 0.0);
    }
}
