//! Bayesian adversary metrics (extension beyond the paper's evaluation).
//!
//! Geo-Ind bounds what an attacker can *learn* relative to the prior; a
//! complementary, widely used privacy metric (Shokri et al., S&P 2011) is the
//! *expected inference error* of a Bayesian adversary who observes the reported
//! location, computes the posterior over real locations, and guesses optimally.
//! These metrics make the privacy/utility trade-off of CORGI matrices visible in
//! the examples and give the test-suite an independent sanity check: a more
//! private matrix can only increase the adversary's error.

use crate::{CorgiError, ObfuscationMatrix, Result};

/// The posterior distribution `Pr(X = v_i | Y = v_l)` for every reported column.
///
/// Returned as `posterior[l][i]`; columns with zero reporting probability get a
/// uniform posterior (they are never observed).
pub fn posterior(matrix: &ObfuscationMatrix, prior: &[f64]) -> Result<Vec<Vec<f64>>> {
    let k = matrix.size();
    if prior.len() != k {
        return Err(CorgiError::InvalidPrior(format!(
            "prior has {} entries for a {k}-cell matrix",
            prior.len()
        )));
    }
    let prior_total: f64 = prior.iter().sum();
    if prior_total <= 0.0 {
        return Err(CorgiError::InvalidPrior("prior mass is zero".to_string()));
    }
    let mut post = vec![vec![0.0; k]; k];
    for l in 0..k {
        let mut denom = 0.0;
        for i in 0..k {
            let joint = prior[i] / prior_total * matrix.get(i, l);
            post[l][i] = joint;
            denom += joint;
        }
        if denom > 0.0 {
            for v in post[l].iter_mut() {
                *v /= denom;
            }
        } else {
            for v in post[l].iter_mut() {
                *v = 1.0 / k as f64;
            }
        }
    }
    Ok(post)
}

/// Expected inference error (km) of a Bayesian adversary performing an optimal
/// remapping attack: for every observed report the adversary guesses the cell
/// minimizing the posterior-expected distance to the true location.
pub fn expected_inference_error(
    matrix: &ObfuscationMatrix,
    prior: &[f64],
    distances: &[Vec<f64>],
) -> Result<f64> {
    let k = matrix.size();
    let post = posterior(matrix, prior)?;
    let reported = matrix.reported_distribution(&normalize(prior))?;
    let mut total = 0.0;
    for l in 0..k {
        // Optimal guess for this observation.
        let mut best = f64::INFINITY;
        for guess in 0..k {
            let expected: f64 = (0..k).map(|i| post[l][i] * distances[i][guess]).sum();
            if expected < best {
                best = expected;
            }
        }
        total += reported[l] * best;
    }
    Ok(total)
}

/// Probability that the adversary's maximum-a-posteriori guess equals the true
/// location (lower is more private).
pub fn map_attack_success(matrix: &ObfuscationMatrix, prior: &[f64]) -> Result<f64> {
    let k = matrix.size();
    let post = posterior(matrix, prior)?;
    let norm_prior = normalize(prior);
    let mut success = 0.0;
    for l in 0..k {
        let guess = post[l]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("posteriors are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Pr(correct, Y=l) = Pr(X=guess)·z_{guess,l}
        success += norm_prior[guess] * matrix.get(guess, l);
    }
    Ok(success)
}

fn normalize(prior: &[f64]) -> Vec<f64> {
    let total: f64 = prior.iter().sum();
    prior.iter().map(|p| p / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn setup(k: usize) -> (Vec<corgi_hexgrid::CellId>, Vec<Vec<f64>>) {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.leaves()[..k].to_vec();
        let mut d = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in 0..k {
                d[i][j] = grid.cell_distance_km(&cells[i], &cells[j]);
            }
        }
        (cells, d)
    }

    #[test]
    fn posterior_rows_are_distributions() {
        let (cells, _d) = setup(4);
        let m = ObfuscationMatrix::uniform(cells).unwrap();
        let prior = vec![0.4, 0.3, 0.2, 0.1];
        let post = posterior(&m, &prior).unwrap();
        for row in &post {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
        // With a uniform matrix the posterior equals the prior.
        for row in &post {
            for (i, &p) in row.iter().enumerate() {
                assert!((p - prior[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_matrix_gives_zero_inference_error() {
        let (cells, d) = setup(3);
        let mut data = vec![0.0; 9];
        for i in 0..3 {
            data[i * 3 + i] = 1.0;
        }
        let identity = ObfuscationMatrix::new(cells, data).unwrap();
        let prior = vec![1.0, 1.0, 1.0];
        let err = expected_inference_error(&identity, &prior, &d).unwrap();
        assert!(err < 1e-12);
        let success = map_attack_success(&identity, &prior).unwrap();
        assert!((success - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_matrix_confuses_the_adversary() {
        let (cells, d) = setup(7);
        let uniform = ObfuscationMatrix::uniform(cells.clone()).unwrap();
        let prior = vec![1.0; 7];
        let err_uniform = expected_inference_error(&uniform, &prior, &d).unwrap();
        assert!(err_uniform > 0.0);
        let success = map_attack_success(&uniform, &prior).unwrap();
        assert!(
            success < 0.5,
            "MAP success {success} should be low for uniform"
        );

        // A nearly-deterministic matrix leaks more: lower error, higher success.
        let mut data = vec![0.01; 49];
        for i in 0..7 {
            data[i * 7 + i] = 1.0 - 0.06;
        }
        let leaky = ObfuscationMatrix::new(cells, data).unwrap();
        let err_leaky = expected_inference_error(&leaky, &prior, &d).unwrap();
        assert!(err_leaky < err_uniform);
        assert!(map_attack_success(&leaky, &prior).unwrap() > success);
    }

    #[test]
    fn invalid_prior_rejected() {
        let (cells, d) = setup(3);
        let m = ObfuscationMatrix::uniform(cells).unwrap();
        assert!(posterior(&m, &[1.0, 1.0]).is_err());
        assert!(expected_inference_error(&m, &[0.0, 0.0, 0.0], &d).is_err());
    }
}
