//! User customization policies (paper Section 3.2).
//!
//! A policy is the triple `<Privacy_l, Precision_l, User_Preferences>`:
//!
//! * **Privacy level** selects the privacy forest: the subtree rooted at that
//!   level which contains the user's real location is the obfuscation range.
//! * **Precision level** is the granularity of the reported location (a level of
//!   the tree, at most the privacy level).
//! * **User preferences** are Boolean predicates `<var, op, val>` over location
//!   attributes (home, office, popular, outlier, distance, ...).  Locations of
//!   the obfuscation range that *fail* a predicate are pruned from the
//!   obfuscation matrix on the user side.

use crate::{CorgiError, Result, Subtree};
use corgi_hexgrid::CellId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Value of a location attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeValue {
    /// Boolean attribute, e.g. `popular = true`.
    Bool(bool),
    /// Numeric attribute, e.g. `distance ≤ 5.0` (kilometres) or `traffic ≥ 3`.
    Number(f64),
    /// Textual attribute, e.g. `weather = "rain"`.
    Text(String),
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Bool(b) => write!(f, "{b}"),
            AttributeValue::Number(n) => write!(f, "{n}"),
            AttributeValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// Comparison operator of a predicate (`op ∈ {=, ≠, <, >, ≤, ≥}` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComparisonOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than (numbers only).
    Lt,
    /// Strictly greater than (numbers only).
    Gt,
    /// Less than or equal (numbers only).
    Le,
    /// Greater than or equal (numbers only).
    Ge,
}

/// A Boolean predicate `<var, op, val>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute name, e.g. `"popular"`, `"home"`, `"distance"`.
    pub var: String,
    /// Comparison operator.
    pub op: ComparisonOp,
    /// Reference value.
    pub value: AttributeValue,
}

impl Predicate {
    /// Convenience constructor.
    pub fn new(var: impl Into<String>, op: ComparisonOp, value: AttributeValue) -> Self {
        Self {
            var: var.into(),
            op,
            value,
        }
    }

    /// `var = true` predicate.
    pub fn is_true(var: impl Into<String>) -> Self {
        Self::new(var, ComparisonOp::Eq, AttributeValue::Bool(true))
    }

    /// `var = false` predicate.
    pub fn is_false(var: impl Into<String>) -> Self {
        Self::new(var, ComparisonOp::Eq, AttributeValue::Bool(false))
    }

    /// Evaluate the predicate against an attribute value.
    ///
    /// A missing attribute (`None`) fails the predicate, and ordering operators
    /// applied to non-numeric values fail as well — a location without the
    /// required metadata is conservatively treated as not satisfying the
    /// user's preference.
    pub fn matches(&self, actual: Option<&AttributeValue>) -> bool {
        let Some(actual) = actual else {
            return false;
        };
        use AttributeValue as V;
        use ComparisonOp as Op;
        match (self.op, actual, &self.value) {
            (Op::Eq, a, b) => a == b,
            (Op::Ne, a, b) => a != b,
            (Op::Lt, V::Number(a), V::Number(b)) => a < b,
            (Op::Gt, V::Number(a), V::Number(b)) => a > b,
            (Op::Le, V::Number(a), V::Number(b)) => a <= b,
            (Op::Ge, V::Number(a), V::Number(b)) => a >= b,
            _ => false,
        }
    }
}

/// Provides attribute values for leaf cells.
///
/// The user-side middleware implements this over its private metadata (check-in
/// history, labelled home/office cells, live context such as distance from the
/// real location).  The attributes never leave the user device — only the *count*
/// of pruned locations is shared with the server (Section 5.2).
pub trait AttributeProvider {
    /// The value of attribute `var` for `cell`, or `None` if unknown.
    fn attribute(&self, cell: &CellId, var: &str) -> Option<AttributeValue>;
}

/// A simple in-memory attribute provider backed by a map; useful for tests and
/// examples.
#[derive(Debug, Clone, Default)]
pub struct MapAttributeProvider {
    values: BTreeMap<(CellId, String), AttributeValue>,
}

impl MapAttributeProvider {
    /// Create an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an attribute for a cell.
    pub fn set(&mut self, cell: CellId, var: impl Into<String>, value: AttributeValue) {
        self.values.insert((cell, var.into()), value);
    }
}

impl AttributeProvider for MapAttributeProvider {
    fn attribute(&self, cell: &CellId, var: &str) -> Option<AttributeValue> {
        self.values.get(&(*cell, var.to_string())).cloned()
    }
}

/// A user customization policy `<Privacy_l, Precision_l, User_Preferences>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Privacy level: level of the tree whose nodes root the privacy forest.
    pub privacy_level: u8,
    /// Precision level: granularity of the reported location (≤ privacy level).
    pub precision_level: u8,
    /// User preferences as Boolean predicates; locations failing any predicate
    /// are pruned from the obfuscation range.
    pub preferences: Vec<Predicate>,
}

impl Policy {
    /// Create a policy, validating that the precision level does not exceed the
    /// privacy level (the paper requires precision < privacy; equal levels would
    /// make the reported location the subtree root itself, which is allowed here
    /// as the degenerate "report the whole range" case is still meaningful).
    pub fn new(
        privacy_level: u8,
        precision_level: u8,
        preferences: Vec<Predicate>,
    ) -> Result<Self> {
        if precision_level > privacy_level {
            return Err(CorgiError::InvalidPolicy(format!(
                "precision level {precision_level} exceeds privacy level {privacy_level}"
            )));
        }
        Ok(Self {
            privacy_level,
            precision_level,
            preferences,
        })
    }

    /// Validate the policy against a tree of the given height.
    pub fn validate_for_height(&self, height: u8) -> Result<()> {
        if self.privacy_level > height {
            return Err(CorgiError::InvalidPolicy(format!(
                "privacy level {} exceeds the tree height {height}",
                self.privacy_level
            )));
        }
        Ok(())
    }

    /// Evaluate the preferences on the leaves of a subtree and return the set of
    /// cells to prune (step ② of the user-side flow, Fig. 8): every leaf that
    /// fails at least one predicate.
    ///
    /// With no preferences nothing is pruned.
    pub fn cells_to_prune<P: AttributeProvider>(
        &self,
        subtree: &Subtree,
        provider: &P,
    ) -> Vec<CellId> {
        if self.preferences.is_empty() {
            return Vec::new();
        }
        subtree
            .leaves()
            .iter()
            .filter(|cell| {
                self.preferences
                    .iter()
                    .any(|pred| !pred.matches(provider.attribute(cell, &pred.var).as_ref()))
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocationTree;
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn tree() -> LocationTree {
        LocationTree::new(HexGrid::new(HexGridConfig::san_francisco()).unwrap())
    }

    #[test]
    fn predicate_boolean_matching() {
        let p = Predicate::is_true("popular");
        assert!(p.matches(Some(&AttributeValue::Bool(true))));
        assert!(!p.matches(Some(&AttributeValue::Bool(false))));
        assert!(!p.matches(None), "missing attribute fails the predicate");
        let p = Predicate::is_false("home");
        assert!(p.matches(Some(&AttributeValue::Bool(false))));
        assert!(!p.matches(Some(&AttributeValue::Bool(true))));
    }

    #[test]
    fn predicate_numeric_comparisons() {
        let le = Predicate::new("distance", ComparisonOp::Le, AttributeValue::Number(5.0));
        assert!(le.matches(Some(&AttributeValue::Number(3.0))));
        assert!(le.matches(Some(&AttributeValue::Number(5.0))));
        assert!(!le.matches(Some(&AttributeValue::Number(5.1))));
        let gt = Predicate::new("traffic", ComparisonOp::Gt, AttributeValue::Number(2.0));
        assert!(gt.matches(Some(&AttributeValue::Number(3.0))));
        assert!(!gt.matches(Some(&AttributeValue::Number(2.0))));
        // Ordering against a non-number fails.
        assert!(!le.matches(Some(&AttributeValue::Text("near".into()))));
    }

    #[test]
    fn predicate_text_equality() {
        let eq = Predicate::new(
            "weather",
            ComparisonOp::Eq,
            AttributeValue::Text("sunny".into()),
        );
        assert!(eq.matches(Some(&AttributeValue::Text("sunny".into()))));
        assert!(!eq.matches(Some(&AttributeValue::Text("rain".into()))));
        let ne = Predicate::new(
            "weather",
            ComparisonOp::Ne,
            AttributeValue::Text("rain".into()),
        );
        assert!(ne.matches(Some(&AttributeValue::Text("sunny".into()))));
    }

    #[test]
    fn policy_validation() {
        assert!(Policy::new(3, 0, vec![]).is_ok());
        assert!(Policy::new(2, 2, vec![]).is_ok());
        assert!(matches!(
            Policy::new(1, 2, vec![]),
            Err(CorgiError::InvalidPolicy(_))
        ));
        let p = Policy::new(3, 0, vec![]).unwrap();
        assert!(p.validate_for_height(3).is_ok());
        assert!(p.validate_for_height(2).is_err());
    }

    #[test]
    fn paper_example_policy_prunes_unpopular_and_far_cells() {
        // <privacy_l = 2, precision_l = 0, preferences = [popular = true, distance ≤ 5 km]>
        let t = tree();
        let subtree = t.privacy_forest(2).unwrap()[0].clone();
        let mut provider = MapAttributeProvider::new();
        // Mark every cell popular except two, and two cells as far away.
        let leaves = subtree.leaves().to_vec();
        for (i, cell) in leaves.iter().enumerate() {
            provider.set(*cell, "popular", AttributeValue::Bool(i != 3 && i != 10));
            let distance = if i == 10 || i == 20 { 9.0 } else { 1.0 };
            provider.set(*cell, "distance", AttributeValue::Number(distance));
        }
        let policy = Policy::new(
            2,
            0,
            vec![
                Predicate::is_true("popular"),
                Predicate::new("distance", ComparisonOp::Le, AttributeValue::Number(5.0)),
            ],
        )
        .unwrap();
        let pruned = policy.cells_to_prune(&subtree, &provider);
        // Cells 3 (unpopular), 10 (unpopular and far) and 20 (far) are pruned.
        assert_eq!(pruned.len(), 3);
        assert!(pruned.contains(&leaves[3]));
        assert!(pruned.contains(&leaves[10]));
        assert!(pruned.contains(&leaves[20]));
    }

    #[test]
    fn empty_preferences_prune_nothing() {
        let t = tree();
        let subtree = t.privacy_forest(1).unwrap()[0].clone();
        let provider = MapAttributeProvider::new();
        let policy = Policy::new(1, 0, vec![]).unwrap();
        assert!(policy.cells_to_prune(&subtree, &provider).is_empty());
    }

    #[test]
    fn missing_attributes_prune_conservatively() {
        // If a predicate references an attribute the provider does not know, the
        // cell fails the predicate and is pruned.
        let t = tree();
        let subtree = t.privacy_forest(1).unwrap()[0].clone();
        let provider = MapAttributeProvider::new();
        let policy = Policy::new(1, 0, vec![Predicate::is_true("popular")]).unwrap();
        let pruned = policy.cells_to_prune(&subtree, &provider);
        assert_eq!(pruned.len(), subtree.leaf_count());
    }
}
