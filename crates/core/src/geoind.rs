//! ε-Geo-Indistinguishability constraints and violation counting.
//!
//! Definition 2.1 of the paper requires, for every pair of real locations
//! `(v_i, v_j)` and every reported location `v_l`,
//!
//! ```text
//! Pr(X = v_i | Y = v_l) / Pr(X = v_j | Y = v_l) ≤ e^{ε·d_{i,j}} · p_{v_i} / p_{v_j}
//! ```
//!
//! which, after applying Bayes' rule, is equivalent to the prior-free matrix form
//! used throughout Section 4 (Eq. 4):  `z_{i,l} ≤ e^{ε·d_{i,j}} · z_{j,l}`.
//! This module checks that condition over arbitrary pair sets and produces the
//! violation percentages reported in the paper's Fig. 12.

use crate::ObfuscationMatrix;
use serde::{Deserialize, Serialize};

/// Result of checking the ε-Geo-Ind constraints of a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoIndReport {
    /// Number of (ordered pair, column) constraints checked.
    pub total_constraints: usize,
    /// Number of violated constraints.
    pub violated: usize,
    /// The largest violation margin `z_{i,l} − e^{ε·d}·z_{j,l}` observed (≤ 0 when
    /// every constraint holds).
    pub worst_margin: f64,
}

impl GeoIndReport {
    /// Percentage of violated constraints (0–100).
    pub fn violation_percentage(&self) -> f64 {
        if self.total_constraints == 0 {
            0.0
        } else {
            100.0 * self.violated as f64 / self.total_constraints as f64
        }
    }

    /// Whether the matrix satisfies ε-Geo-Ind on the checked constraint set.
    pub fn is_satisfied(&self) -> bool {
        self.violated == 0
    }
}

/// Check ε-Geo-Ind over **all** ordered pairs of locations (the full Definition
/// 2.1), using the given pairwise distances (km) and ε (1/km).
///
/// `tolerance` absorbs floating-point noise: a constraint counts as violated only
/// if `z_{i,l} > e^{ε·d}·z_{j,l} + tolerance`.
pub fn check_all_pairs(
    matrix: &ObfuscationMatrix,
    distances: &[Vec<f64>],
    epsilon: f64,
    tolerance: f64,
) -> GeoIndReport {
    let k = matrix.size();
    let pairs: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| (0..k).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    check_pairs(matrix, distances, epsilon, tolerance, &pairs)
}

/// Check ε-Geo-Ind over an explicit set of ordered pairs (e.g. only the
/// neighboring peers of the mobility graph, Section 4.2).
pub fn check_pairs(
    matrix: &ObfuscationMatrix,
    distances: &[Vec<f64>],
    epsilon: f64,
    tolerance: f64,
    pairs: &[(usize, usize)],
) -> GeoIndReport {
    let k = matrix.size();
    let mut violated = 0usize;
    let mut worst: f64 = f64::NEG_INFINITY;
    for &(i, j) in pairs {
        let bound = (epsilon * distances[i][j]).exp();
        for l in 0..k {
            let margin = matrix.get(i, l) - bound * matrix.get(j, l);
            if margin > worst {
                worst = margin;
            }
            if margin > tolerance {
                violated += 1;
            }
        }
    }
    GeoIndReport {
        total_constraints: pairs.len() * k,
        violated,
        worst_margin: if pairs.is_empty() { 0.0 } else { worst },
    }
}

/// Number of Geo-Ind constraints the LP needs **without** the graph
/// approximation: one per ordered pair of distinct locations and column,
/// i.e. `K·(K−1)·K` (the paper's `O(K³)`).
pub fn full_constraint_count(k: usize) -> usize {
    k * k.saturating_sub(1) * k
}

/// Number of Geo-Ind constraints **with** the graph approximation: one per
/// directed neighbor-pair and column (the paper's `O(12·K²)` bound).
pub fn approx_constraint_count(k: usize, undirected_neighbor_pairs: usize) -> usize {
    2 * undirected_neighbor_pairs * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn setup(k: usize) -> (ObfuscationMatrix, Vec<Vec<f64>>) {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.leaves()[..k].to_vec();
        let mut distances = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in 0..k {
                distances[i][j] = grid.cell_distance_km(&cells[i], &cells[j]);
            }
        }
        (ObfuscationMatrix::uniform(cells).unwrap(), distances)
    }

    #[test]
    fn uniform_matrix_satisfies_geo_ind() {
        let (m, d) = setup(7);
        let report = check_all_pairs(&m, &d, 10.0, 1e-9);
        assert!(report.is_satisfied());
        assert_eq!(report.violation_percentage(), 0.0);
        assert_eq!(report.total_constraints, 7 * 6 * 7);
        assert!(report.worst_margin <= 1e-12);
    }

    #[test]
    fn deterministic_matrix_violates_geo_ind() {
        // Identity-like matrix: reporting the true location with probability 1.
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.leaves()[..3].to_vec();
        let mut data = vec![0.0; 9];
        for i in 0..3 {
            data[i * 3 + i] = 1.0;
        }
        let m = ObfuscationMatrix::new(cells.clone(), data).unwrap();
        let mut d = vec![vec![0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                d[i][j] = grid.cell_distance_km(&cells[i], &cells[j]);
            }
        }
        let report = check_all_pairs(&m, &d, 1.0, 1e-9);
        assert!(!report.is_satisfied());
        // Every ordered pair violates exactly the column of the first location:
        // z_{i,i} = 1 > e^{εd}·z_{j,i} = 0.
        assert_eq!(report.violated, 6);
        assert!(report.worst_margin > 0.9);
    }

    #[test]
    fn violation_counts_depend_on_epsilon() {
        // A mildly skewed matrix: with a generous ε it passes, with a tiny ε it fails.
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.leaves()[..2].to_vec();
        let m = ObfuscationMatrix::new(cells.clone(), vec![0.7, 0.3, 0.3, 0.7]).unwrap();
        let d = vec![
            vec![0.0, grid.cell_distance_km(&cells[0], &cells[1])],
            vec![grid.cell_distance_km(&cells[0], &cells[1]), 0.0],
        ];
        let strict = check_all_pairs(&m, &d, 0.05, 1e-9);
        let loose = check_all_pairs(&m, &d, 15.0, 1e-9);
        assert!(!strict.is_satisfied());
        assert!(loose.is_satisfied());
    }

    #[test]
    fn pair_subset_checks_fewer_constraints() {
        let (m, d) = setup(7);
        let pairs = vec![(0, 1), (1, 0), (2, 3)];
        let report = check_pairs(&m, &d, 10.0, 1e-9, &pairs);
        assert_eq!(report.total_constraints, 3 * 7);
        assert!(report.is_satisfied());
    }

    #[test]
    fn constraint_count_formulas() {
        assert_eq!(full_constraint_count(7), 7 * 6 * 7);
        assert_eq!(full_constraint_count(49), 49 * 48 * 49);
        // 49 cells with, say, 240 undirected neighbor pairs → 2·240·49 constraints.
        assert_eq!(approx_constraint_count(49, 240), 2 * 240 * 49);
        assert!(approx_constraint_count(49, 240) < full_constraint_count(49));
    }

    #[test]
    fn empty_pair_set_reports_zero() {
        let (m, d) = setup(3);
        let report = check_pairs(&m, &d, 1.0, 1e-9, &[]);
        assert_eq!(report.total_constraints, 0);
        assert_eq!(report.violation_percentage(), 0.0);
        assert!(report.is_satisfied());
    }
}
