//! The obfuscation matrix (paper Section 2.1).
//!
//! An obfuscation strategy over a finite location set `V = {v_1, …, v_K}` is a
//! row-stochastic matrix `Z = {z_{i,j}}` where `z_{i,j}` is the probability of
//! reporting `v_j` when the real location is `v_i` (Eq. 1).

use crate::{CorgiError, Result};
use corgi_hexgrid::CellId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-stochastic obfuscation matrix over an ordered set of cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObfuscationMatrix {
    cells: Vec<CellId>,
    /// Row-major probabilities, `data[i * k + j] = z_{i,j}`.
    data: Vec<f64>,
}

impl ObfuscationMatrix {
    /// Build a matrix from cells and row-major data.
    ///
    /// Validates dimensions, non-negativity (within tolerance) and row sums.
    pub fn new(cells: Vec<CellId>, data: Vec<f64>) -> Result<Self> {
        let k = cells.len();
        if k == 0 {
            return Err(CorgiError::InvalidMatrix("empty cell set".to_string()));
        }
        if data.len() != k * k {
            return Err(CorgiError::InvalidMatrix(format!(
                "expected {}x{} = {} entries, got {}",
                k,
                k,
                k * k,
                data.len()
            )));
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(CorgiError::InvalidMatrix(
                "matrix contains non-finite entries".to_string(),
            ));
        }
        let matrix = Self { cells, data };
        matrix.check_stochastic(1e-6)?;
        Ok(matrix)
    }

    /// Build a matrix without validating row sums (used internally when entries
    /// will be normalized right after, e.g. raw LP output).  Entries are clamped
    /// to be non-negative and each row is renormalized.
    pub fn from_lp_solution(cells: Vec<CellId>, mut data: Vec<f64>) -> Result<Self> {
        let k = cells.len();
        if k == 0 || data.len() != k * k {
            return Err(CorgiError::InvalidMatrix(
                "LP solution has the wrong dimensions".to_string(),
            ));
        }
        for row in 0..k {
            let slice = &mut data[row * k..(row + 1) * k];
            for v in slice.iter_mut() {
                if !v.is_finite() || *v < 0.0 {
                    *v = 0.0;
                }
            }
            let sum: f64 = slice.iter().sum();
            if sum <= 0.0 {
                return Err(CorgiError::InvalidMatrix(format!(
                    "row {row} of the LP solution has no probability mass"
                )));
            }
            for v in slice.iter_mut() {
                *v /= sum;
            }
        }
        Ok(Self { cells, data })
    }

    /// Build a matrix from wire-decoded parts, checking dimensions only.
    ///
    /// The binary wire codec reconstructs matrices with this constructor; it
    /// accepts exactly what the derived serde `Deserialize` accepts (no
    /// non-negativity or row-sum validation, entries preserved bit-exactly —
    /// including NaN, ±0 and subnormals), so a forest decoded from either
    /// codec compares equal.  Anything that *generates* matrices goes through
    /// the validating [`ObfuscationMatrix::new`] instead.
    pub fn from_wire_parts(cells: Vec<CellId>, data: Vec<f64>) -> Result<Self> {
        let k = cells.len();
        if k == 0 {
            return Err(CorgiError::InvalidMatrix("empty cell set".to_string()));
        }
        if data.len() != k * k {
            return Err(CorgiError::InvalidMatrix(format!(
                "wire matrix over {} cells must carry {} entries, got {}",
                k,
                k * k,
                data.len()
            )));
        }
        Ok(Self { cells, data })
    }

    /// The uniform obfuscation matrix over the given cells (every row is uniform).
    pub fn uniform(cells: Vec<CellId>) -> Result<Self> {
        let k = cells.len();
        if k == 0 {
            return Err(CorgiError::InvalidMatrix("empty cell set".to_string()));
        }
        Ok(Self {
            data: vec![1.0 / k as f64; k * k],
            cells,
        })
    }

    /// The cells covered by the matrix, in row/column order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of locations `K`.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Entry `z_{i,j}`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.size() + j]
    }

    /// A full row (the obfuscation distribution of real location `i`).
    pub fn row(&self, i: usize) -> &[f64] {
        let k = self.size();
        &self.data[i * k..(i + 1) * k]
    }

    /// Row-major data slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Index of a cell within the matrix.
    pub fn index_of(&self, cell: &CellId) -> Option<usize> {
        self.cells.iter().position(|c| c == cell)
    }

    /// Verify every row sums to 1 and entries are non-negative, within `tol`.
    pub fn check_stochastic(&self, tol: f64) -> Result<()> {
        let k = self.size();
        for i in 0..k {
            let row = self.row(i);
            if let Some(v) = row.iter().find(|&&v| v < -tol) {
                return Err(CorgiError::InvalidMatrix(format!(
                    "row {i} has a negative entry {v}"
                )));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > tol {
                return Err(CorgiError::InvalidMatrix(format!(
                    "row {i} sums to {sum}, expected 1"
                )));
            }
        }
        Ok(())
    }

    /// Sample an obfuscated location for the real location `real` (Fig. 8 step ⑧).
    pub fn sample<R: Rng>(&self, real: &CellId, rng: &mut R) -> Result<CellId> {
        let i = self.index_of(real).ok_or(CorgiError::UnknownCell(*real))?;
        Ok(self.cells[self.sample_row(i, rng)])
    }

    /// Sample a column index from row `i`.
    pub fn sample_row<R: Rng>(&self, i: usize, rng: &mut R) -> usize {
        let row = self.row(i);
        let mut u: f64 = rng.gen::<f64>() * row.iter().sum::<f64>();
        for (j, &p) in row.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return j;
            }
        }
        row.len() - 1
    }

    /// The probability `Pr(Y = j)` of each reported location under a prior over
    /// the real locations.
    pub fn reported_distribution(&self, prior: &[f64]) -> Result<Vec<f64>> {
        let k = self.size();
        if prior.len() != k {
            return Err(CorgiError::InvalidPrior(format!(
                "prior has {} entries, matrix covers {k} cells",
                prior.len()
            )));
        }
        let mut out = vec![0.0; k];
        for i in 0..k {
            for j in 0..k {
                out[j] += prior[i] * self.get(i, j);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cells(n: usize) -> Vec<CellId> {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        grid.leaves()[..n].to_vec()
    }

    #[test]
    fn uniform_matrix_is_stochastic() {
        let m = ObfuscationMatrix::uniform(cells(7)).unwrap();
        assert_eq!(m.size(), 7);
        m.check_stochastic(1e-12).unwrap();
        assert!((m.get(3, 4) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let c = cells(2);
        assert!(ObfuscationMatrix::new(c.clone(), vec![0.5, 0.4, 0.5, 0.5]).is_err());
        assert!(ObfuscationMatrix::new(c.clone(), vec![1.2, -0.2, 0.5, 0.5]).is_err());
        assert!(ObfuscationMatrix::new(c.clone(), vec![0.5, 0.5, 0.5]).is_err());
        assert!(ObfuscationMatrix::new(c, vec![0.5, 0.5, 0.25, 0.75]).is_ok());
        assert!(ObfuscationMatrix::new(vec![], vec![]).is_err());
    }

    #[test]
    fn lp_solution_is_cleaned_and_normalized() {
        let c = cells(2);
        // Slightly negative and slightly off-sum rows get repaired.
        let m = ObfuscationMatrix::from_lp_solution(c, vec![0.6, 0.42, -1e-9, 1.0000001]).unwrap();
        m.check_stochastic(1e-9).unwrap();
        assert!((m.get(1, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lp_solution_with_empty_row_rejected() {
        let c = cells(2);
        assert!(matches!(
            ObfuscationMatrix::from_lp_solution(c, vec![0.0, 0.0, 0.5, 0.5]),
            Err(CorgiError::InvalidMatrix(_))
        ));
    }

    #[test]
    fn sampling_follows_the_row_distribution() {
        let c = cells(3);
        let m = ObfuscationMatrix::new(
            c.clone(),
            vec![
                0.8,
                0.2,
                0.0,
                0.1,
                0.1,
                0.8,
                1.0 / 3.0,
                1.0 / 3.0,
                1.0 / 3.0,
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let obf = m.sample(&c[0], &mut rng).unwrap();
            counts[m.index_of(&obf).unwrap()] += 1;
        }
        let f0 = counts[0] as f64 / 30_000.0;
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f0 - 0.8).abs() < 0.02, "{f0}");
        assert!((f1 - 0.2).abs() < 0.02, "{f1}");
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn sampling_unknown_cell_fails() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let m = ObfuscationMatrix::uniform(grid.leaves()[..5].to_vec()).unwrap();
        let outside = grid.leaves()[100];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            m.sample(&outside, &mut rng),
            Err(CorgiError::UnknownCell(_))
        ));
    }

    #[test]
    fn reported_distribution_is_probability_vector() {
        let c = cells(3);
        let m =
            ObfuscationMatrix::new(c, vec![0.8, 0.2, 0.0, 0.1, 0.1, 0.8, 0.3, 0.3, 0.4]).unwrap();
        let prior = vec![0.5, 0.25, 0.25];
        let reported = m.reported_distribution(&prior).unwrap();
        let total: f64 = reported.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((reported[0] - (0.5 * 0.8 + 0.25 * 0.1 + 0.25 * 0.3)).abs() < 1e-12);
        assert!(m.reported_distribution(&[1.0]).is_err());
    }
}
