//! Matrix precision reduction (Section 4.5, Algorithm 2, Eq. 17).
//!
//! When a user requests a precision level `l > 0`, the leaf-level obfuscation
//! matrix `Z⁰` is aggregated to level `l` instead of re-solving the LP:
//!
//! ```text
//! z^l_{i,j} = Σ_{v_m ∈ N(v_i)} p_{v_m} · Σ_{v_n ∈ N(v_j)} z⁰_{m,n}  /  p_{v_i}
//! ```
//!
//! Proposition 4.6 shows this preserves both row-stochasticity and ε-Geo-Ind.
//! The paper's Fig. 14 measures the large speed-up of this aggregation compared
//! with recalculating the matrix at the coarser level.

use crate::{CorgiError, LocationTree, ObfuscationMatrix, Result};
use corgi_hexgrid::CellId;
use std::collections::HashMap;

/// Reduce the precision of a leaf-level matrix to the given level.
///
/// * `matrix` — the (possibly pruned) obfuscation matrix whose cells are leaves.
/// * `tree` — the location tree providing the ancestor relation.
/// * `level` — the target precision level (0 returns a clone).
/// * `leaf_priors` — prior probability of each matrix cell, in matrix order (the
///   paper's `p_{v_m}`; it does not need to be normalized).
pub fn precision_reduction(
    matrix: &ObfuscationMatrix,
    tree: &LocationTree,
    level: u8,
    leaf_priors: &[f64],
) -> Result<ObfuscationMatrix> {
    if level == 0 {
        return Ok(matrix.clone());
    }
    if level > tree.height() {
        return Err(CorgiError::InvalidPolicy(format!(
            "precision level {level} exceeds the tree height {}",
            tree.height()
        )));
    }
    let k = matrix.size();
    if leaf_priors.len() != k {
        return Err(CorgiError::InvalidPrior(format!(
            "expected {k} leaf priors, got {}",
            leaf_priors.len()
        )));
    }
    if leaf_priors.iter().any(|p| !p.is_finite() || *p < 0.0) {
        return Err(CorgiError::InvalidPrior(
            "leaf priors must be finite and non-negative".to_string(),
        ));
    }
    if matrix.cells().iter().any(|c| !c.is_leaf()) {
        return Err(CorgiError::InvalidMatrix(
            "precision reduction expects a leaf-level matrix".to_string(),
        ));
    }

    // Group the matrix cells by their ancestor at `level`, preserving first-seen
    // order so the output is deterministic.
    let mut ancestor_order: Vec<CellId> = Vec::new();
    let mut groups: HashMap<CellId, Vec<usize>> = HashMap::new();
    for (idx, cell) in matrix.cells().iter().enumerate() {
        let ancestor = cell.ancestor_at(level);
        groups.entry(ancestor).or_insert_with(|| {
            ancestor_order.push(ancestor);
            Vec::new()
        });
        groups.get_mut(&ancestor).expect("just inserted").push(idx);
    }

    let m = ancestor_order.len();
    if m == 0 {
        return Err(CorgiError::InvalidMatrix("empty matrix".to_string()));
    }

    // Aggregate priors per group; every group needs positive mass to be a valid
    // conditioning event in Eq. 17.
    let group_prior: Vec<f64> = ancestor_order
        .iter()
        .map(|a| groups[a].iter().map(|&i| leaf_priors[i]).sum::<f64>())
        .collect();
    if let Some(pos) = group_prior.iter().position(|&p| p <= 0.0) {
        return Err(CorgiError::InvalidPrior(format!(
            "ancestor {} has zero prior mass; Eq. 17 is undefined",
            ancestor_order[pos]
        )));
    }

    let mut data = vec![0.0; m * m];
    for (gi, ancestor_i) in ancestor_order.iter().enumerate() {
        for (gj, ancestor_j) in ancestor_order.iter().enumerate() {
            let mut numerator = 0.0;
            for &leaf_u in &groups[ancestor_i] {
                let row_sum: f64 = groups[ancestor_j]
                    .iter()
                    .map(|&leaf_v| matrix.get(leaf_u, leaf_v))
                    .sum();
                numerator += leaf_priors[leaf_u] * row_sum;
            }
            data[gi * m + gj] = numerator / group_prior[gi];
        }
    }
    ObfuscationMatrix::new(ancestor_order, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{geoind, ObfuscationProblem, SolverKind};
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn tree() -> LocationTree {
        LocationTree::new(HexGrid::new(HexGridConfig::san_francisco()).unwrap())
    }

    fn level2_problem() -> (LocationTree, ObfuscationProblem, Vec<f64>) {
        let t = tree();
        let subtree = t.privacy_forest(2).unwrap()[0].clone();
        let k = subtree.leaf_count();
        let prior: Vec<f64> = (0..k).map(|i| 1.0 + (i % 7) as f64).collect();
        let targets: Vec<usize> = (0..k).step_by(7).collect();
        let p = ObfuscationProblem::new(&t, &subtree, &prior, &targets, 15.0, true).unwrap();
        (t, p, prior)
    }

    #[test]
    fn reduction_to_level_zero_is_identity() {
        let t = tree();
        let cells = t.privacy_forest(1).unwrap()[0].leaves().to_vec();
        let m = ObfuscationMatrix::uniform(cells).unwrap();
        let reduced = precision_reduction(&m, &t, 0, &[1.0; 7]).unwrap();
        assert_eq!(reduced, m);
    }

    #[test]
    fn reduction_shrinks_dimensions_by_aperture() {
        let (t, p, prior) = level2_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        let reduced = precision_reduction(&matrix, &t, 1, &prior).unwrap();
        assert_eq!(matrix.size(), 49);
        assert_eq!(reduced.size(), 7);
        assert!(reduced.cells().iter().all(|c| c.level() == 1));
    }

    #[test]
    fn proposition_4_6_row_stochasticity_preserved() {
        let (t, p, prior) = level2_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        let reduced = precision_reduction(&matrix, &t, 1, &prior).unwrap();
        reduced.check_stochastic(1e-9).unwrap();
    }

    #[test]
    fn proposition_4_6_geo_ind_preserved() {
        // The leaf matrix satisfies ε-Geo-Ind (by construction); the reduced matrix
        // must satisfy it too, with distances between the level-1 cell centers.
        let (t, p, prior) = level2_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        let leaf_report = geoind::check_all_pairs(&matrix, p.distances(), p.epsilon(), 1e-6);
        assert!(leaf_report.is_satisfied());

        let reduced = precision_reduction(&matrix, &t, 1, &prior).unwrap();
        let d = t.distance_matrix(reduced.cells());
        let report = geoind::check_all_pairs(&reduced, &d, p.epsilon(), 1e-6);
        assert!(
            report.is_satisfied(),
            "violations {} / {}",
            report.violated,
            report.total_constraints
        );
    }

    #[test]
    fn uniform_leaf_matrix_reduces_to_uniform() {
        let t = tree();
        let subtree = t.privacy_forest(2).unwrap()[0].clone();
        let m = ObfuscationMatrix::uniform(subtree.leaves().to_vec()).unwrap();
        let reduced = precision_reduction(&m, &t, 1, &vec![1.0; 49]).unwrap();
        for i in 0..reduced.size() {
            for j in 0..reduced.size() {
                assert!((reduced.get(i, j) - 1.0 / 7.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn skewed_priors_weight_the_aggregation() {
        // Two sibling leaves with very different priors: the group row must be
        // dominated by the heavy leaf's row.
        let t = tree();
        let subtree = t.privacy_forest(1).unwrap()[0].clone();
        let cells = subtree.leaves().to_vec();
        let k = cells.len();
        // Row 0 reports itself always; rows 1.. report cell 1 always.
        let mut data = vec![0.0; k * k];
        data[0] = 1.0;
        for i in 1..k {
            data[i * k + 1] = 1.0;
        }
        let m = ObfuscationMatrix::new(cells, data).unwrap();
        let mut priors = vec![1.0; k];
        priors[0] = 100.0;
        // All leaves share the same level-1 ancestor, so the reduced matrix is 1×1
        // and trivially [1.0]; instead reduce to the root level to see weighting.
        let reduced = precision_reduction(&m, &t, 1, &priors).unwrap();
        assert_eq!(reduced.size(), 1);
        assert!((reduced.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (t, p, prior) = level2_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        assert!(matches!(
            precision_reduction(&matrix, &t, 9, &prior),
            Err(CorgiError::InvalidPolicy(_))
        ));
        assert!(matches!(
            precision_reduction(&matrix, &t, 1, &prior[..10]),
            Err(CorgiError::InvalidPrior(_))
        ));
        let zero_prior = vec![0.0; matrix.size()];
        assert!(matches!(
            precision_reduction(&matrix, &t, 1, &zero_prior),
            Err(CorgiError::InvalidPrior(_))
        ));
        // Non-leaf matrix rejected.
        let coarse = ObfuscationMatrix::uniform(
            t.privacy_forest(1)
                .unwrap()
                .iter()
                .map(|s| s.root())
                .collect(),
        )
        .unwrap();
        assert!(matches!(
            precision_reduction(&coarse, &t, 2, &vec![1.0; 49]),
            Err(CorgiError::InvalidMatrix(_))
        ));
    }
}
