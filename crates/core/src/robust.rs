//! Robust (δ-prunable) obfuscation-matrix generation (Section 4.4, Algorithm 1).
//!
//! A matrix is δ-prunable (Definition 4.2) if it still satisfies ε-Geo-Ind after
//! any pruning of at most δ locations.  Proposition 4.4 gives a sufficient
//! condition: tighten each Geo-Ind constraint by a *reserved privacy budget*
//! ε′_{i,j} (Eq. 12); Proposition 4.5 replaces the exponential-cost exact budget
//! by the efficient approximation of Eq. 14.  Algorithm 1 alternates between
//! computing the reserved budget from the current matrix and re-solving the
//! tightened LP until convergence.

use crate::{formulation::SolverKind, CorgiError, ObfuscationMatrix, ObfuscationProblem, Result};
use corgi_lp::{InteriorPointOptions, WarmStart};
use serde::{Deserialize, Serialize};

/// Configuration of robust matrix generation (Algorithm 1 inputs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustConfig {
    /// Maximum number of locations the user may prune (δ).
    pub delta: usize,
    /// Number of refinement iterations `t` (the paper observes convergence in
    /// about 4 iterations and uses 10).
    pub iterations: usize,
    /// LP solver to use for every iteration.
    pub solver: SolverKind,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self {
            delta: 3,
            iterations: 10,
            solver: SolverKind::Auto,
        }
    }
}

/// The outcome of one run of Algorithm 1.
#[derive(Debug, Clone)]
pub struct RobustRun {
    /// The final (robust) obfuscation matrix `Z_t`.
    pub matrix: ObfuscationMatrix,
    /// Quality loss Δ(Z_i) after every iteration, starting with the non-robust
    /// matrix `Z_0` (index 0).  This is the series plotted in Fig. 9(a)(b).
    pub objective_per_iteration: Vec<f64>,
    /// The reserved-privacy-budget matrix of the final iteration.
    pub final_rpb: Vec<Vec<f64>>,
    /// The converged interior-point iterate of the last LP solved (`None` when
    /// the solver was the simplex or the last solve needed repair).  Feed it
    /// to [`generate_robust_matrix_warm`] for a grid-adjacent `(privacy_level,
    /// δ)` problem to skip most of that run's interior-point work.
    pub warm: Option<WarmStart>,
}

impl RobustRun {
    /// Differences of the objective between consecutive iterations
    /// (the series plotted in Fig. 9(c)(d)).
    pub fn objective_differences(&self) -> Vec<f64> {
        self.objective_per_iteration
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect()
    }
}

/// Compute the approximate reserved privacy budget ε′_{i,j} of Eq. 14 for every
/// ordered pair, from the current matrix.
///
/// `ε′_{i,j} = (1/d_{i,j}) · ln[(1 − P_i·e^{−ε·d_{i,j}}) / (1 − P_i)]` where
/// `P_i = max_{|S| ≤ δ} Σ_{l∈S} z_{i,l}` is the largest probability mass that δ
/// pruned columns can remove from row `i`.
///
/// Note: the displayed Eq. 14 of the paper writes `z_{j,l}`, but the derivation
/// in the proof of Proposition 4.5 bounds the ratio through row `i`: from the
/// enforced constraint `z_{i,l} ≤ e^{ε·d}·z_{j,l}` it follows that
/// `1 − Σ_S z_{j,l} ≤ 1 − e^{−ε·d}·Σ_S z_{i,l}`, so the valid upper bound on
/// Eq. 12 is a function of row `i`'s prunable mass.  We follow the proof (using
/// row `j` instead can under-reserve and is not an upper bound of Eq. 12, which
/// the `exact_rpb_bounded_by_approximation` test demonstrates).
pub fn reserved_privacy_budget_approx(
    matrix: &ObfuscationMatrix,
    distances: &[Vec<f64>],
    epsilon: f64,
    delta: usize,
) -> Vec<Vec<f64>> {
    let k = matrix.size();
    // Top-δ row sums P_i.
    let top_sums: Vec<f64> = (0..k)
        .map(|i| top_delta_sum(matrix.row(i), delta))
        .collect();
    let mut rpb = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            rpb[i][j] = rpb_from_mass(top_sums[i], epsilon, distances[i][j]);
        }
    }
    rpb
}

/// Compute the exact reserved privacy budget of Eq. 12 by enumerating all subsets
/// `S` with `|S| ≤ δ`.  Exponential in δ — only use for small instances (tests and
/// the ablation bench comparing Eq. 12 with Eq. 14).
///
/// Returns an error when the enumeration would exceed ~2 million subsets.
pub fn reserved_privacy_budget_exact(
    matrix: &ObfuscationMatrix,
    distances: &[Vec<f64>],
    epsilon: f64,
    delta: usize,
) -> Result<Vec<Vec<f64>>> {
    let k = matrix.size();
    let subsets = count_subsets(k, delta);
    if subsets > 2_000_000 {
        return Err(CorgiError::InvalidMatrix(format!(
            "exact reserved budget would enumerate {subsets} subsets; use the approximation"
        )));
    }
    let all_subsets = enumerate_subsets(k, delta);
    let mut rpb = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let mut best_ratio = 1.0f64;
            for subset in &all_subsets {
                let removed_j: f64 = subset.iter().map(|&l| matrix.get(j, l)).sum();
                let removed_i: f64 = subset.iter().map(|&l| matrix.get(i, l)).sum();
                let denom = 1.0 - removed_i;
                if denom <= 1e-12 {
                    continue;
                }
                let ratio = (1.0 - removed_j) / denom;
                if ratio > best_ratio {
                    best_ratio = ratio;
                }
            }
            let d = distances[i][j].max(1e-12);
            rpb[i][j] = (best_ratio.ln() / d).clamp(0.0, epsilon);
        }
    }
    Ok(rpb)
}

fn top_delta_sum(row: &[f64], delta: usize) -> f64 {
    if delta == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = row.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("probabilities are finite"));
    sorted.iter().take(delta).sum()
}

fn rpb_from_mass(mass_j: f64, epsilon: f64, distance: f64) -> f64 {
    // Guard against the degenerate case where almost the whole row can be pruned:
    // the reserved budget would blow up; cap the mass just below 1.
    let p = mass_j.clamp(0.0, 1.0 - 1e-9);
    let d = distance.max(1e-12);
    let numerator = 1.0 - p * (-epsilon * d).exp();
    let denominator = 1.0 - p;
    ((numerator / denominator).ln() / d).max(0.0)
}

fn count_subsets(k: usize, delta: usize) -> u128 {
    let mut total: u128 = 0;
    for size in 1..=delta.min(k) {
        let mut c: u128 = 1;
        for x in 0..size {
            c = c * (k - x) as u128 / (x + 1) as u128;
        }
        total += c;
    }
    total
}

fn enumerate_subsets(k: usize, delta: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn recurse(
        start: usize,
        k: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if !current.is_empty() {
            out.push(current.clone());
        }
        if remaining == 0 {
            return;
        }
        for next in start..k {
            current.push(next);
            recurse(next + 1, k, remaining - 1, current, out);
            current.pop();
        }
    }
    recurse(0, k, delta.min(k), &mut current, &mut out);
    out
}

/// Generate the non-robust baseline matrix (the LP of Eq. 8; this is the
/// "non-robust" comparator used throughout the paper's evaluation, equivalent to
/// δ = 0).
pub fn generate_nonrobust_matrix(
    problem: &ObfuscationProblem,
    solver: SolverKind,
) -> Result<ObfuscationMatrix> {
    problem.solve(None, solver)
}

/// Algorithm 1: generate a δ-prunable robust obfuscation matrix.
///
/// Returns the matrix after `config.iterations` refinement steps together with
/// the per-iteration objective values (Fig. 9) and the final reserved budget.
pub fn generate_robust_matrix(
    problem: &ObfuscationProblem,
    config: &RobustConfig,
) -> Result<RobustRun> {
    generate_robust_matrix_warm(problem, config, None)
}

/// [`generate_robust_matrix`] warm-started from a converged iterate of a
/// nearby run (typically the grid neighbour's [`RobustRun::warm`]).
///
/// The warm iterate seeds the initial solve; every refinement iteration then
/// chains from the converged iterate of the previous solve (a refinement
/// changes only the reserved-budget tightening of some constraints, so each
/// LP is a small perturbation of the last).  A solve that does not produce a
/// reusable iterate falls back to the best one seen so far.
pub fn generate_robust_matrix_warm(
    problem: &ObfuscationProblem,
    config: &RobustConfig,
    warm: Option<&WarmStart>,
) -> Result<RobustRun> {
    let options = problem.solver_options();
    // Tolerance ladder: intermediate iterations only exist to feed the
    // reserved-budget recomputation (Eq. 14) — itself an upper-bound
    // *approximation* whose error dwarfs 1e-4 — and the fixed point they
    // chase oscillates rather than converging to machine precision.  Solving
    // them to 1e-8 buys nothing but interior-point tail iterations (the slow
    // final grind dominates each solve), so every solve except the last runs
    // at a relaxed tolerance; the final LP — the one whose solution ships as
    // the obfuscation matrix — always solves at the caller's full tolerance.
    // Combined with the warm chaining below, this is what turns Algorithm 1
    // from `iterations + 1` full cold solves into one cold solve plus cheap
    // refinements.
    const REFINEMENT_TOLERANCE: f64 = 1e-4;
    let refinements = if config.delta == 0 {
        0
    } else {
        config.iterations
    };
    let relaxed = InteriorPointOptions {
        tolerance: options.tolerance.max(REFINEMENT_TOLERANCE),
        ..options
    };
    let init_options = if refinements > 0 { relaxed } else { options };
    // Step 4: the initial matrix from the plain LP (Eq. 8).
    let (mut matrix, mut warm_state) =
        problem.solve_with_options_warm(None, config.solver, init_options, warm)?;
    let mut objectives = vec![problem.quality_loss(&matrix)];
    let mut rpb = vec![vec![0.0; problem.size()]; problem.size()];

    if config.delta == 0 || config.iterations == 0 {
        return Ok(RobustRun {
            matrix,
            objective_per_iteration: objectives,
            final_rpb: rpb,
            warm: warm_state,
        });
    }

    // Steps 7–13: iterate RPB computation and LP re-solution, each solve
    // seeded from the previous converged iterate and — except the last —
    // solved at the relaxed refinement tolerance.
    for t in 1..=refinements {
        rpb = reserved_privacy_budget_approx(
            &matrix,
            problem.distances(),
            problem.epsilon(),
            config.delta,
        );
        let step_options = if t == refinements { options } else { relaxed };
        let (m, w) = problem.solve_with_options_warm(
            Some(&rpb),
            config.solver,
            step_options,
            warm_state.as_ref(),
        )?;
        matrix = m;
        warm_state = w.or(warm_state);
        objectives.push(problem.quality_loss(&matrix));
    }

    Ok(RobustRun {
        matrix,
        objective_per_iteration: objectives,
        final_rpb: rpb,
        warm: warm_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{geoind, prune::prune_matrix, LocationTree};
    use corgi_hexgrid::{HexGrid, HexGridConfig};
    use rand::prelude::*;

    fn small_problem() -> (LocationTree, ObfuscationProblem) {
        let tree = LocationTree::new(HexGrid::new(HexGridConfig::san_francisco()).unwrap());
        let subtree = tree.privacy_forest(1).unwrap()[0].clone();
        let prior: Vec<f64> = vec![3.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1.0];
        let targets = vec![0usize, 2, 5];
        let p = ObfuscationProblem::new(&tree, &subtree, &prior, &targets, 15.0, true).unwrap();
        (tree, p)
    }

    #[test]
    fn top_delta_sum_takes_largest_entries() {
        assert!((top_delta_sum(&[0.1, 0.5, 0.2, 0.2], 2) - 0.7).abs() < 1e-12);
        assert_eq!(top_delta_sum(&[0.3, 0.7], 0), 0.0);
        assert!((top_delta_sum(&[0.3, 0.7], 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rpb_is_nonnegative_and_grows_with_delta() {
        let (_tree, p) = small_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        let rpb1 = reserved_privacy_budget_approx(&matrix, p.distances(), p.epsilon(), 1);
        let rpb3 = reserved_privacy_budget_approx(&matrix, p.distances(), p.epsilon(), 3);
        let k = p.size();
        for i in 0..k {
            for j in 0..k {
                assert!(rpb1[i][j] >= 0.0);
                assert!(rpb3[i][j] + 1e-12 >= rpb1[i][j], "budget must grow with δ");
            }
        }
    }

    #[test]
    fn exact_rpb_bounded_by_approximation() {
        // Proposition 4.5: ε_{i,j} ≤ ε′_{i,j}, i.e. the approximation is an upper bound.
        let (_tree, p) = small_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        let exact = reserved_privacy_budget_exact(&matrix, p.distances(), p.epsilon(), 2).unwrap();
        let approx = reserved_privacy_budget_approx(&matrix, p.distances(), p.epsilon(), 2);
        let k = p.size();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    assert!(
                        exact[i][j] <= approx[i][j] + 1e-9,
                        "pair ({i},{j}): exact {} > approx {}",
                        exact[i][j],
                        approx[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn exact_rpb_guards_against_explosion() {
        let (_tree, p) = small_problem();
        let matrix = p.solve(None, SolverKind::Auto).unwrap();
        // δ = 7 over 7 cells is fine (2^7 subsets), but a fake huge δ over a huge K
        // is rejected; simulate by calling count guard directly.
        assert!(reserved_privacy_budget_exact(&matrix, p.distances(), p.epsilon(), 3).is_ok());
        assert!(count_subsets(343, 5) > 2_000_000);
    }

    #[test]
    fn robust_matrix_costs_more_quality_than_nonrobust() {
        let (_tree, p) = small_problem();
        let nonrobust = generate_nonrobust_matrix(&p, SolverKind::Auto).unwrap();
        let robust = generate_robust_matrix(
            &p,
            &RobustConfig {
                delta: 2,
                iterations: 4,
                solver: SolverKind::Auto,
            },
        )
        .unwrap();
        let q_nr = p.quality_loss(&nonrobust);
        let q_r = p.quality_loss(&robust.matrix);
        assert!(
            q_r + 1e-9 >= q_nr,
            "robustness reserves budget, so quality loss cannot decrease: {q_r} vs {q_nr}"
        );
        assert_eq!(robust.objective_per_iteration.len(), 5);
        assert_eq!(robust.objective_differences().len(), 4);
    }

    #[test]
    fn objective_converges_over_iterations() {
        let (_tree, p) = small_problem();
        let run = generate_robust_matrix(
            &p,
            &RobustConfig {
                delta: 2,
                iterations: 8,
                solver: SolverKind::Auto,
            },
        )
        .unwrap();
        let diffs = run.objective_differences();
        // The last difference is much smaller than the first jump (Fig. 9 behaviour).
        let first = diffs[0].abs().max(1e-9);
        let last = diffs.last().unwrap().abs();
        assert!(last <= first, "no convergence: first {first}, last {last}");
        assert!(last < 0.2 * (1.0 + run.objective_per_iteration[0]));
    }

    #[test]
    fn delta_zero_returns_nonrobust_matrix() {
        let (_tree, p) = small_problem();
        let run = generate_robust_matrix(
            &p,
            &RobustConfig {
                delta: 0,
                iterations: 5,
                solver: SolverKind::Auto,
            },
        )
        .unwrap();
        assert_eq!(run.objective_per_iteration.len(), 1);
        let nonrobust = generate_nonrobust_matrix(&p, SolverKind::Auto).unwrap();
        let diff = (p.quality_loss(&run.matrix) - p.quality_loss(&nonrobust)).abs();
        assert!(diff < 1e-9);
    }

    #[test]
    fn robust_matrix_survives_random_pruning_better_than_nonrobust() {
        // The core claim of the paper (Fig. 12): after pruning δ random locations,
        // the robust matrix violates far fewer Geo-Ind constraints.
        let (_tree, p) = small_problem();
        let delta = 2usize;
        let nonrobust = generate_nonrobust_matrix(&p, SolverKind::Auto).unwrap();
        let robust = generate_robust_matrix(
            &p,
            &RobustConfig {
                delta,
                iterations: 6,
                solver: SolverKind::Auto,
            },
        )
        .unwrap()
        .matrix;

        let mut rng = StdRng::seed_from_u64(11);
        let mut violations_nonrobust = 0usize;
        let mut violations_robust = 0usize;
        let trials = 60;
        for _ in 0..trials {
            let mut cells = p.cells().to_vec();
            cells.shuffle(&mut rng);
            let prune: Vec<_> = cells[..delta].to_vec();
            for (matrix, counter) in [
                (&nonrobust, &mut violations_nonrobust),
                (&robust, &mut violations_robust),
            ] {
                let pruned = prune_matrix(matrix, &prune).unwrap();
                // Distances restricted to the surviving cells.
                let survivors: Vec<usize> = p
                    .cells()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !prune.contains(c))
                    .map(|(i, _)| i)
                    .collect();
                let d: Vec<Vec<f64>> = survivors
                    .iter()
                    .map(|&i| survivors.iter().map(|&j| p.distances()[i][j]).collect())
                    .collect();
                let report = geoind::check_all_pairs(&pruned, &d, p.epsilon(), 1e-7);
                *counter += report.violated;
            }
        }
        assert!(
            violations_robust <= violations_nonrobust,
            "robust {violations_robust} vs non-robust {violations_nonrobust}"
        );
    }
}
