//! The location tree (paper Section 3.1, Definition 3.1).
//!
//! A location tree is a balanced rooted tree over a region where every level is a
//! granularity of location reporting, sibling nodes partition their parent, and
//! leaves are the finest cells.  [`LocationTree`] wraps a [`HexGrid`] (which
//! provides the aperture-7 hierarchy) and adds the paper's vocabulary: levels,
//! privacy forests, and subtrees rooted at a privacy level.

use crate::{CorgiError, Result};
use corgi_geo::LatLng;
use corgi_hexgrid::{CellId, HexGrid};
use serde::{Deserialize, Serialize};

/// A location tree over a geographic area of interest.
#[derive(Debug, Clone)]
pub struct LocationTree {
    grid: HexGrid,
}

/// A subtree of the location tree rooted at a node of the privacy level, i.e. one
/// tree of the *privacy forest* (paper Fig. 3).  The subtree's leaf cells are the
/// user's obfuscation range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subtree {
    root: CellId,
    leaves: Vec<CellId>,
}

impl Subtree {
    /// Root node of the subtree.
    pub fn root(&self) -> CellId {
        self.root
    }

    /// Leaf cells of the subtree (the obfuscation range), in stable digit order.
    pub fn leaves(&self) -> &[CellId] {
        &self.leaves
    }

    /// Number of leaf cells.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Position of a leaf cell inside this subtree, if present.
    pub fn index_of(&self, cell: &CellId) -> Option<usize> {
        self.leaves.iter().position(|c| c == cell)
    }

    /// Whether a cell belongs to the subtree (at any level).
    pub fn contains(&self, cell: &CellId) -> bool {
        self.root.is_ancestor_of(cell)
    }
}

impl LocationTree {
    /// Build a location tree over the given grid.
    pub fn new(grid: HexGrid) -> Self {
        Self { grid }
    }

    /// The underlying spatial index.
    pub fn grid(&self) -> &HexGrid {
        &self.grid
    }

    /// Height of the tree (level of the root).
    pub fn height(&self) -> u8 {
        self.grid.height()
    }

    /// The root node covering the whole area of interest.
    pub fn root(&self) -> CellId {
        self.grid.root()
    }

    /// All nodes at a given level (`V_k` in the paper), in stable digit order.
    pub fn nodes_at_level(&self, level: u8) -> Result<Vec<CellId>> {
        if level > self.height() {
            return Err(CorgiError::InvalidPolicy(format!(
                "level {level} exceeds the tree height {}",
                self.height()
            )));
        }
        Ok(self.grid.cells_at_level(level))
    }

    /// The leaf nodes (`V_0`), in stable digit order.
    pub fn leaves(&self) -> &[CellId] {
        self.grid.leaves()
    }

    /// Every privacy level this tree can serve, cheapest forest first:
    /// `0..=height()`.  Level 0 roots a subtree at every leaf (K = |leaves|
    /// one-cell matrices); the top level is the single full-tree subtree.
    ///
    /// This is the enumeration hook for cache warming: the serving layer's
    /// `(privacy_level, δ)` key grid is this list crossed with the δ range.
    pub fn privacy_levels(&self) -> Vec<u8> {
        (0..=self.height()).collect()
    }

    /// The privacy forest for a privacy level: all subtrees rooted at that level.
    pub fn privacy_forest(&self, privacy_level: u8) -> Result<Vec<Subtree>> {
        let roots = self.nodes_at_level(privacy_level)?;
        Ok(roots
            .into_iter()
            .map(|root| Subtree {
                leaves: root.descendant_leaves(),
                root,
            })
            .collect())
    }

    /// The subtree of the privacy forest that contains the given leaf cell.
    pub fn subtree_containing(&self, leaf: &CellId, privacy_level: u8) -> Result<Subtree> {
        if !leaf.is_leaf() {
            return Err(CorgiError::InvalidMatrix(format!(
                "expected a leaf cell, got level {}",
                leaf.level()
            )));
        }
        if privacy_level > self.height() {
            return Err(CorgiError::InvalidPolicy(format!(
                "privacy level {privacy_level} exceeds the tree height {}",
                self.height()
            )));
        }
        if self.grid.leaf_index(leaf).is_err() {
            return Err(CorgiError::UnknownCell(*leaf));
        }
        let root = leaf.ancestor_at(privacy_level);
        Ok(Subtree {
            leaves: root.descendant_leaves(),
            root,
        })
    }

    /// The subtree of the privacy forest containing a geographic point.
    pub fn subtree_containing_point(&self, point: &LatLng, privacy_level: u8) -> Result<Subtree> {
        let leaf = self.grid.leaf_containing(point)?;
        self.subtree_containing(&leaf, privacy_level)
    }

    /// The leaf cell containing a geographic point.
    pub fn leaf_containing(&self, point: &LatLng) -> Result<CellId> {
        Ok(self.grid.leaf_containing(point)?)
    }

    /// Haversine distance (km) between the centers of two cells (`d_{i,j}`).
    pub fn distance_km(&self, a: &CellId, b: &CellId) -> f64 {
        self.grid.cell_distance_km(a, b)
    }

    /// Pairwise haversine distance matrix for a list of cells.
    pub fn distance_matrix(&self, cells: &[CellId]) -> Vec<Vec<f64>> {
        let centers: Vec<LatLng> = cells.iter().map(|c| self.grid.cell_center(c)).collect();
        let n = cells.len();
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = corgi_geo::haversine_km(&centers[i], &centers[j]);
                d[i][j] = dist;
                d[j][i] = dist;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::HexGridConfig;

    fn tree() -> LocationTree {
        LocationTree::new(HexGrid::new(HexGridConfig::san_francisco()).unwrap())
    }

    #[test]
    fn levels_match_paper_setup() {
        // Paper Section 6.2.5: level 3 = root covering 343 locations; a level-2
        // subtree covers 49 locations, level-1 covers 7, level-0 covers 1.
        let t = tree();
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaves().len(), 343);
        assert_eq!(t.privacy_forest(2).unwrap().len(), 7);
        assert_eq!(t.privacy_forest(2).unwrap()[0].leaf_count(), 49);
        assert_eq!(t.privacy_forest(1).unwrap()[0].leaf_count(), 7);
        assert_eq!(t.privacy_forest(3).unwrap()[0].leaf_count(), 343);
    }

    #[test]
    fn privacy_levels_enumerate_every_forest() {
        let t = tree();
        let levels = t.privacy_levels();
        assert_eq!(levels, vec![0, 1, 2, 3]);
        for level in levels {
            assert!(t.privacy_forest(level).is_ok());
        }
    }

    #[test]
    fn privacy_forest_partitions_leaves() {
        let t = tree();
        let forest = t.privacy_forest(2).unwrap();
        let total: usize = forest.iter().map(Subtree::leaf_count).sum();
        assert_eq!(total, 343);
        // Each leaf is in exactly one subtree.
        for leaf in t.leaves() {
            let owners = forest.iter().filter(|s| s.contains(leaf)).count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn subtree_containing_leaf_is_consistent() {
        let t = tree();
        let leaf = t.leaves()[200];
        let sub = t.subtree_containing(&leaf, 2).unwrap();
        assert!(sub.contains(&leaf));
        assert_eq!(sub.root().level(), 2);
        assert!(sub.index_of(&leaf).is_some());
        assert_eq!(sub.leaf_count(), 49);
    }

    #[test]
    fn subtree_containing_point_matches_leaf_lookup() {
        let t = tree();
        let leaf = t.leaves()[137];
        let point = t.grid().cell_center(&leaf);
        let sub = t.subtree_containing_point(&point, 1).unwrap();
        assert!(sub.contains(&leaf));
        assert_eq!(sub.leaf_count(), 7);
        assert_eq!(t.leaf_containing(&point).unwrap(), leaf);
    }

    #[test]
    fn invalid_levels_rejected() {
        let t = tree();
        assert!(t.nodes_at_level(9).is_err());
        assert!(t.privacy_forest(9).is_err());
        let leaf = t.leaves()[0];
        assert!(t.subtree_containing(&leaf, 9).is_err());
        assert!(
            t.subtree_containing(&t.root(), 2).is_err(),
            "non-leaf rejected"
        );
    }

    #[test]
    fn distance_matrix_is_symmetric_metric_like() {
        let t = tree();
        let sub = t.privacy_forest(1).unwrap()[0].clone();
        let d = t.distance_matrix(sub.leaves());
        let n = sub.leaf_count();
        for i in 0..n {
            assert_eq!(d[i][i], 0.0);
            for j in 0..n {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
                if i != j {
                    assert!(d[i][j] > 0.0);
                }
            }
        }
    }
}
