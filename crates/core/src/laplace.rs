//! Planar-Laplace mechanism (Andrés et al., CCS 2013) as an additional baseline.
//!
//! The original Geo-Ind mechanism — the one deployed in the Location Guard
//! browser extension — adds continuous 2-D Laplace noise to the true position:
//! the angle is uniform and the radius follows the distribution with CDF
//! `C_ε(r) = 1 − (1 + εr)·e^{−εr}`, sampled by inverting the CDF with the
//! Lambert-W function (branch `W_{−1}`).  CORGI's matrix mechanisms are compared
//! against this continuous baseline in the examples and ablation benches; the
//! planar Laplace satisfies ε-Geo-Ind by construction but offers no
//! customization, no tree granularity, and no robustness to pruning.

use corgi_geo::{destination_point, LatLng};
use corgi_hexgrid::{CellId, HexGrid};
use rand::Rng;

/// The planar-Laplace Geo-Ind mechanism with privacy budget ε (1/km).
#[derive(Debug, Clone, Copy)]
pub struct PlanarLaplace {
    epsilon: f64,
}

impl PlanarLaplace {
    /// Create a mechanism with the given privacy budget (must be positive).
    ///
    /// # Panics
    /// Panics if ε is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive, got {epsilon}"
        );
        Self { epsilon }
    }

    /// The privacy budget ε (1/km).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Sample a noisy location for the given real position.
    pub fn sample<R: Rng>(&self, real: &LatLng, rng: &mut R) -> LatLng {
        let theta = rng.gen::<f64>() * 360.0;
        let p = rng.gen::<f64>();
        let radius = self.inverse_cdf(p);
        destination_point(real, theta, radius)
    }

    /// Sample a noisy location and snap it to the nearest leaf cell of a grid
    /// (clamping to the grid if the noise falls outside), so the output is
    /// comparable with CORGI's cell-level reports.
    pub fn sample_cell<R: Rng>(&self, grid: &HexGrid, real: &LatLng, rng: &mut R) -> CellId {
        let noisy = self.sample(real, rng);
        if let Ok(cell) = grid.leaf_containing(&noisy) {
            return cell;
        }
        // Outside the grid: fall back to the closest leaf by center distance.
        let mut best = grid.leaves()[0];
        let mut best_d = f64::INFINITY;
        for leaf in grid.leaves() {
            let d = corgi_geo::haversine_km(&grid.cell_center(leaf), &noisy);
            if d < best_d {
                best_d = d;
                best = *leaf;
            }
        }
        best
    }

    /// Inverse CDF of the radial distribution:
    /// `C_ε^{-1}(p) = −(1/ε)·(W_{−1}((p−1)/e) + 1)`.
    pub fn inverse_cdf(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0 - 1e-15);
        let z = (p - 1.0) / std::f64::consts::E;
        let w = lambert_w_minus1(z);
        -(w + 1.0) / self.epsilon
    }

    /// CDF of the radial distribution, `C_ε(r) = 1 − (1 + εr)·e^{−εr}`.
    pub fn cdf(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        1.0 - (1.0 + self.epsilon * r) * (-self.epsilon * r).exp()
    }
}

/// The `W_{−1}` branch of the Lambert W function on `[−1/e, 0)`.
///
/// Solved by bisection (the function `w·e^w` is strictly decreasing on
/// `(−∞, −1]`) followed by a few Newton refinement steps.
pub fn lambert_w_minus1(z: f64) -> f64 {
    let min_z = -1.0 / std::f64::consts::E;
    assert!(
        (min_z..0.0).contains(&z) || (z - min_z).abs() < 1e-15,
        "W_-1 is defined on [-1/e, 0), got {z}"
    );
    if (z - min_z).abs() < 1e-15 {
        return -1.0;
    }
    // Bisection on [lo, hi] with f(w) = w·e^w decreasing: f(hi = -1) = -1/e ≤ z,
    // f(lo → -∞) → 0⁻ ≥ z.
    let mut lo: f64 = -746.0; // below this e^w underflows to zero
    let mut hi: f64 = -1.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let f = mid * mid.exp();
        if f > z {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * hi.abs().max(1.0) {
            break;
        }
    }
    let mut w = 0.5 * (lo + hi);
    // Newton polish: g(w) = w e^w − z, g'(w) = e^w (1 + w).
    for _ in 0..4 {
        let ew = w.exp();
        let g = w * ew - z;
        let dg = ew * (1.0 + w);
        if dg.abs() < 1e-300 {
            break;
        }
        let next = w - g / dg;
        if next.is_finite() && next < -1.0 {
            w = next;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_geo::haversine_km;
    use corgi_hexgrid::HexGridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lambert_w_satisfies_defining_equation() {
        for &z in &[-0.3, -0.2, -0.1, -0.01, -1e-6] {
            let w = lambert_w_minus1(z);
            assert!(w <= -1.0);
            assert!((w * w.exp() - z).abs() < 1e-10, "z={z}, w={w}");
        }
        assert!((lambert_w_minus1(-1.0 / std::f64::consts::E) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_cdf_inverts_cdf() {
        let mech = PlanarLaplace::new(2.0);
        for &p in &[0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let r = mech.inverse_cdf(p);
            assert!(r > 0.0);
            assert!((mech.cdf(r) - p).abs() < 1e-8, "p={p}, r={r}");
        }
        // Monotone.
        assert!(mech.inverse_cdf(0.9) > mech.inverse_cdf(0.5));
    }

    #[test]
    fn higher_epsilon_means_less_noise() {
        let tight = PlanarLaplace::new(10.0);
        let loose = PlanarLaplace::new(1.0);
        assert!(tight.inverse_cdf(0.9) < loose.inverse_cdf(0.9));
    }

    #[test]
    fn sampled_radius_matches_cdf_quantiles() {
        let mech = PlanarLaplace::new(4.0);
        let real = LatLng::new(37.7749, -122.4194).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let median_expected = mech.inverse_cdf(0.5);
        let mut below = 0usize;
        for _ in 0..n {
            let noisy = mech.sample(&real, &mut rng);
            if haversine_km(&real, &noisy) <= median_expected {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "median check failed: {frac}");
    }

    #[test]
    fn cell_sampling_returns_grid_cells() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let mech = PlanarLaplace::new(1.0);
        let real = grid.cell_center(&grid.leaves()[171]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let cell = mech.sample_cell(&grid, &real, &mut rng);
            assert!(grid.leaf_index(&cell).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = PlanarLaplace::new(0.0);
    }
}
