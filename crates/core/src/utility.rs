//! Utility / quality-loss metrics (paper Eq. 3, 6, 7).
//!
//! The utility of reporting `v_l` instead of the real location `v_i` towards a
//! target `v_n` is the absolute estimation error of the travelling distance,
//! `U(v_i, v_l, v_n) = |d(v_i, v_n) − d(v_l, v_n)|` with haversine distances.

use crate::ObfuscationMatrix;
use corgi_geo::{haversine_km, LatLng};

/// Estimation error between two already-computed distances (Eq. 3 with the
/// distances precomputed): `|d(real, target) − d(reported, target)|`.
pub fn estimation_error(d_real_target: f64, d_reported_target: f64) -> f64 {
    (d_real_target - d_reported_target).abs()
}

/// Utility of a single report towards a single target (Eq. 3), in km.
pub fn single_target_utility(real: &LatLng, reported: &LatLng, target: &LatLng) -> f64 {
    estimation_error(haversine_km(real, target), haversine_km(reported, target))
}

/// Mean utility over several targets (the paper averages over `N` targets).
pub fn multi_target_utility(real: &LatLng, reported: &LatLng, targets: &[LatLng]) -> f64 {
    if targets.is_empty() {
        return 0.0;
    }
    targets
        .iter()
        .map(|t| single_target_utility(real, reported, t))
        .sum::<f64>()
        / targets.len() as f64
}

/// Expected quality loss Δ(Z) of an obfuscation matrix (Eq. 6–7): the expectation
/// of the estimation error over the prior of real locations, the rows of the
/// matrix, and the distribution of targets.
///
/// * `distances[i][j]` — pairwise distance (km) between matrix cells.
/// * `prior[i]` — `Pr(X = v_i)`, normalized internally.
/// * `targets` / `target_probs` — indices (into the matrix cells) and
///   probabilities of the places of interest.
pub fn expected_quality_loss(
    matrix: &ObfuscationMatrix,
    distances: &[Vec<f64>],
    prior: &[f64],
    targets: &[usize],
    target_probs: &[f64],
) -> f64 {
    let k = matrix.size();
    assert_eq!(prior.len(), k, "prior length mismatch");
    assert_eq!(targets.len(), target_probs.len(), "target weights mismatch");
    let prior_total: f64 = prior.iter().sum();
    let mut loss = 0.0;
    for (t_pos, &q) in targets.iter().enumerate() {
        let mut per_target = 0.0;
        for real in 0..k {
            let mut row_error = 0.0;
            for reported in 0..k {
                row_error += matrix.get(real, reported)
                    * estimation_error(distances[real][q], distances[reported][q]);
            }
            per_target += (prior[real] / prior_total) * row_error;
        }
        loss += target_probs[t_pos] * per_target;
    }
    loss
}

/// Empirical quality loss: draw `samples` (real location, obfuscated location)
/// pairs from the prior and the matrix and average the estimation error towards
/// the targets.  Converges to [`expected_quality_loss`] as `samples → ∞`.
pub fn empirical_quality_loss<R: rand::Rng>(
    matrix: &ObfuscationMatrix,
    distances: &[Vec<f64>],
    prior: &[f64],
    targets: &[usize],
    target_probs: &[f64],
    samples: usize,
    rng: &mut R,
) -> f64 {
    let k = matrix.size();
    let prior_total: f64 = prior.iter().sum();
    let mut total = 0.0;
    for _ in 0..samples {
        // Sample a real location from the prior.
        let mut u: f64 = rng.gen::<f64>() * prior_total;
        let mut real = k - 1;
        for (i, &p) in prior.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                real = i;
                break;
            }
        }
        let reported = matrix.sample_row(real, rng);
        // Sample a target.
        let mut ut: f64 = rng.gen::<f64>() * target_probs.iter().sum::<f64>();
        let mut target = targets[targets.len() - 1];
        for (pos, &tp) in target_probs.iter().enumerate() {
            ut -= tp;
            if ut <= 0.0 {
                target = targets[pos];
                break;
            }
        }
        total += estimation_error(distances[real][target], distances[reported][target]);
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(k: usize) -> (ObfuscationMatrix, Vec<Vec<f64>>) {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.leaves()[..k].to_vec();
        let mut d = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in 0..k {
                d[i][j] = grid.cell_distance_km(&cells[i], &cells[j]);
            }
        }
        (ObfuscationMatrix::uniform(cells).unwrap(), d)
    }

    #[test]
    fn estimation_error_basics() {
        assert_eq!(estimation_error(5.0, 5.0), 0.0);
        assert_eq!(estimation_error(5.0, 3.0), 2.0);
        assert_eq!(estimation_error(3.0, 5.0), 2.0);
    }

    #[test]
    fn single_target_utility_is_zero_for_truthful_report() {
        let a = LatLng::new(37.77, -122.42).unwrap();
        let t = LatLng::new(37.80, -122.40).unwrap();
        assert!(single_target_utility(&a, &a, &t) < 1e-12);
    }

    #[test]
    fn multi_target_utility_averages() {
        let real = LatLng::new(37.77, -122.42).unwrap();
        let reported = LatLng::new(37.78, -122.42).unwrap();
        let t1 = LatLng::new(37.80, -122.40).unwrap();
        let t2 = LatLng::new(37.70, -122.45).unwrap();
        let avg = multi_target_utility(&real, &reported, &[t1, t2]);
        let manual = (single_target_utility(&real, &reported, &t1)
            + single_target_utility(&real, &reported, &t2))
            / 2.0;
        assert!((avg - manual).abs() < 1e-12);
        assert_eq!(multi_target_utility(&real, &reported, &[]), 0.0);
    }

    #[test]
    fn truthful_matrix_has_zero_quality_loss() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.leaves()[..4].to_vec();
        let mut data = vec![0.0; 16];
        for i in 0..4 {
            data[i * 4 + i] = 1.0;
        }
        let identity = ObfuscationMatrix::new(cells.clone(), data).unwrap();
        let mut d = vec![vec![0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                d[i][j] = grid.cell_distance_km(&cells[i], &cells[j]);
            }
        }
        let loss = expected_quality_loss(&identity, &d, &[0.25; 4], &[0, 1, 2], &[0.4, 0.3, 0.3]);
        assert!(loss < 1e-12);
    }

    #[test]
    fn uniform_matrix_has_positive_quality_loss() {
        let (m, d) = setup(7);
        let loss = expected_quality_loss(&m, &d, &[1.0; 7], &[0, 3], &[0.5, 0.5]);
        assert!(loss > 0.0);
    }

    #[test]
    fn empirical_matches_expected_quality_loss() {
        let (m, d) = setup(7);
        let prior = vec![1.0, 2.0, 1.0, 3.0, 1.0, 1.0, 2.0];
        let targets = [0usize, 4];
        let tp = [0.3, 0.7];
        let expected = expected_quality_loss(&m, &d, &prior, &targets, &tp);
        let mut rng = StdRng::seed_from_u64(3);
        let empirical = empirical_quality_loss(&m, &d, &prior, &targets, &tp, 60_000, &mut rng);
        assert!(
            (expected - empirical).abs() < 0.03 * (1.0 + expected),
            "expected {expected}, empirical {empirical}"
        );
    }
}
