//! Matrix pruning: user-side customization by removing locations (Section 4.3).
//!
//! Given the set `S` of locations that fail the user's preferences, pruning
//! removes the corresponding rows and columns from `Z⁰` and renormalizes every
//! remaining row by `1 / (1 − Σ_{l∈S} z_{i,l})`, which restores the probability
//! unit measure (Eq. 1) but — for a non-robust matrix — may break ε-Geo-Ind
//! (hence Section 4.4's robust generation).

use crate::{CorgiError, ObfuscationMatrix, Result};
use corgi_hexgrid::CellId;
use std::collections::HashSet;

/// Minimum probability mass a row must keep after pruning for the
/// renormalization to be numerically meaningful.
const MIN_SURVIVING_MASS: f64 = 1e-9;

/// Prune the given cells from an obfuscation matrix (rows and columns) and
/// renormalize the remaining rows.
///
/// Cells in `to_prune` that are not part of the matrix are ignored (the caller's
/// preference evaluation may cover a larger area than this subtree).  Errors if
/// pruning would remove every location or leave a row with (almost) no mass.
pub fn prune_matrix(matrix: &ObfuscationMatrix, to_prune: &[CellId]) -> Result<ObfuscationMatrix> {
    let prune_set: HashSet<CellId> = to_prune.iter().copied().collect();
    let k = matrix.size();
    let keep: Vec<usize> = (0..k)
        .filter(|&i| !prune_set.contains(&matrix.cells()[i]))
        .collect();
    if keep.is_empty() {
        return Err(CorgiError::OverPruned {
            requested: to_prune.len(),
            available: k,
        });
    }
    if keep.len() == k {
        // Nothing to prune.
        return Ok(matrix.clone());
    }

    let kept_cells: Vec<CellId> = keep.iter().map(|&i| matrix.cells()[i]).collect();
    let m = keep.len();
    let mut data = vec![0.0; m * m];
    for (new_i, &old_i) in keep.iter().enumerate() {
        let surviving_mass: f64 = keep.iter().map(|&old_j| matrix.get(old_i, old_j)).sum();
        if surviving_mass < MIN_SURVIVING_MASS {
            return Err(CorgiError::OverPruned {
                requested: to_prune.len(),
                available: k,
            });
        }
        for (new_j, &old_j) in keep.iter().enumerate() {
            data[new_i * m + new_j] = matrix.get(old_i, old_j) / surviving_mass;
        }
    }
    ObfuscationMatrix::new(kept_cells, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn cells(n: usize) -> Vec<CellId> {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        grid.leaves()[..n].to_vec()
    }

    fn random_stochastic_matrix(n: usize, seed: u64) -> ObfuscationMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            let mut row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
            let sum: f64 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= sum;
            }
            data[i * n..(i + 1) * n].copy_from_slice(&row);
        }
        ObfuscationMatrix::new(cells(n), data).unwrap()
    }

    #[test]
    fn pruning_removes_rows_and_columns() {
        let m = random_stochastic_matrix(5, 1);
        let prune = vec![m.cells()[1], m.cells()[3]];
        let pruned = prune_matrix(&m, &prune).unwrap();
        assert_eq!(pruned.size(), 3);
        assert!(!pruned.cells().contains(&prune[0]));
        assert!(!pruned.cells().contains(&prune[1]));
    }

    #[test]
    fn pruned_matrix_stays_row_stochastic() {
        // This is the paper's explicit claim at the end of Section 4.3.
        let m = random_stochastic_matrix(7, 2);
        let prune = vec![m.cells()[0], m.cells()[4], m.cells()[6]];
        let pruned = prune_matrix(&m, &prune).unwrap();
        pruned.check_stochastic(1e-9).unwrap();
    }

    #[test]
    fn renormalization_matches_formula() {
        // z'_{i,k} = z_{i,k} / (1 − Σ_{l∈S} z_{i,l})
        let m = random_stochastic_matrix(4, 3);
        let prune = vec![m.cells()[2]];
        let pruned = prune_matrix(&m, &prune).unwrap();
        let removed_mass = m.get(0, 2);
        let expected = m.get(0, 1) / (1.0 - removed_mass);
        let new_col = pruned.index_of(&m.cells()[1]).unwrap();
        let new_row = pruned.index_of(&m.cells()[0]).unwrap();
        assert!((pruned.get(new_row, new_col) - expected).abs() < 1e-12);
    }

    #[test]
    fn pruning_nothing_returns_clone() {
        let m = random_stochastic_matrix(4, 4);
        let pruned = prune_matrix(&m, &[]).unwrap();
        assert_eq!(pruned, m);
        // Unknown cells are ignored.
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let outside = grid.leaves()[300];
        let pruned = prune_matrix(&m, &[outside]).unwrap();
        assert_eq!(pruned, m);
    }

    #[test]
    fn pruning_everything_fails() {
        let m = random_stochastic_matrix(3, 5);
        let all: Vec<CellId> = m.cells().to_vec();
        assert!(matches!(
            prune_matrix(&m, &all),
            Err(CorgiError::OverPruned { .. })
        ));
    }

    #[test]
    fn pruning_all_mass_of_a_row_fails() {
        // Row 0 puts all its probability on cell 1; pruning cell 1 leaves row 0 empty.
        let c = cells(3);
        let data = vec![
            0.0, 1.0, 0.0, //
            0.3, 0.4, 0.3, //
            0.2, 0.2, 0.6,
        ];
        let m = ObfuscationMatrix::new(c.clone(), data).unwrap();
        assert!(matches!(
            prune_matrix(&m, &[c[1]]),
            Err(CorgiError::OverPruned { .. })
        ));
    }

    proptest! {
        /// Pruning any strict subset of a strictly-positive matrix preserves row
        /// stochasticity and the relative proportions of surviving entries.
        #[test]
        fn prop_pruning_preserves_stochasticity(seed in 0u64..300, prune_mask in 1u8..31) {
            let n = 5usize;
            let m = random_stochastic_matrix(n, seed);
            let prune: Vec<CellId> = (0..n)
                .filter(|i| prune_mask & (1 << i) != 0)
                .map(|i| m.cells()[i])
                .collect();
            prop_assume!(prune.len() < n);
            let pruned = prune_matrix(&m, &prune).unwrap();
            pruned.check_stochastic(1e-9).unwrap();
            prop_assert_eq!(pruned.size(), n - prune.len());
            // Relative proportions within a surviving row are unchanged.
            let survivors: Vec<usize> = (0..n)
                .filter(|i| prune_mask & (1 << i) == 0)
                .collect();
            let (a, b) = (survivors[0], *survivors.last().unwrap());
            if a != b {
                let old_ratio = m.get(a, a) / m.get(a, b);
                let na = pruned.index_of(&m.cells()[a]).unwrap();
                let nb = pruned.index_of(&m.cells()[b]).unwrap();
                let new_ratio = pruned.get(na, na) / pruned.get(na, nb);
                prop_assert!((old_ratio - new_ratio).abs() < 1e-9 * (1.0 + old_ratio.abs()));
            }
        }
    }
}
