//! Error type for the CORGI core algorithms.

use corgi_hexgrid::{CellId, HexGridError};
use corgi_lp::LpError;
use std::fmt;

/// Errors produced by the CORGI core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CorgiError {
    /// A policy referenced a privacy or precision level outside the tree.
    InvalidPolicy(String),
    /// The privacy budget ε must be strictly positive.
    InvalidEpsilon(f64),
    /// The prior distribution is malformed (wrong length, negative mass, zero total).
    InvalidPrior(String),
    /// The obfuscation matrix is malformed or incompatible with the operation.
    InvalidMatrix(String),
    /// Pruning removed too much: a row lost (almost) all of its probability mass
    /// or every location was pruned.
    OverPruned {
        /// Number of cells that were requested to be pruned.
        requested: usize,
        /// Number of cells in the matrix before pruning.
        available: usize,
    },
    /// A cell involved in the operation does not belong to the expected set.
    UnknownCell(CellId),
    /// The LP generating the matrix could not be solved to optimality.
    Solver(String),
    /// Error bubbled up from the spatial index.
    Grid(String),
}

impl fmt::Display for CorgiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorgiError::InvalidPolicy(msg) => write!(f, "invalid policy: {msg}"),
            CorgiError::InvalidEpsilon(e) => write!(f, "invalid privacy budget epsilon = {e}"),
            CorgiError::InvalidPrior(msg) => write!(f, "invalid prior distribution: {msg}"),
            CorgiError::InvalidMatrix(msg) => write!(f, "invalid obfuscation matrix: {msg}"),
            CorgiError::OverPruned {
                requested,
                available,
            } => write!(
                f,
                "pruning {requested} of {available} locations leaves no usable obfuscation range"
            ),
            CorgiError::UnknownCell(c) => {
                write!(f, "cell {c} is not part of the obfuscation range")
            }
            CorgiError::Solver(msg) => write!(f, "LP solver failure: {msg}"),
            CorgiError::Grid(msg) => write!(f, "spatial index error: {msg}"),
        }
    }
}

impl std::error::Error for CorgiError {}

impl From<LpError> for CorgiError {
    fn from(e: LpError) -> Self {
        CorgiError::Solver(e.to_string())
    }
}

impl From<HexGridError> for CorgiError {
    fn from(e: HexGridError) -> Self {
        CorgiError::Grid(e.to_string())
    }
}
