//! Property tests for [`corgi_datagen::ZipfSampler`]: sampled frequencies
//! track the analytic distribution across the whole `(n, exponent)` space,
//! sampling is deterministic under a fixed seed, and the degenerate corners
//! (exponent 0 → uniform, n = 1 → constant) hold exactly.

use corgi_datagen::ZipfSampler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Empirical rank frequencies match the analytic Zipf probabilities
    /// within a sampling-noise tolerance, and the rank order is respected:
    /// under any positive exponent rank 0 stays the most frequent.
    #[test]
    fn sampled_frequencies_match_the_exponent(
        n in 2usize..40,
        exponent in 0.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let sampler = ZipfSampler::new(n, exponent);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 20_000usize;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Binomial σ for a rank of probability p is √(p(1−p)/draws) ≤ 0.0036
        // at draws = 20k; 0.02 is a > 5σ bound, so flakes mean a real bug.
        for rank in 0..n {
            let freq = counts[rank] as f64 / draws as f64;
            prop_assert!(
                (freq - sampler.probability(rank)).abs() < 0.02,
                "rank {} of n={} s={}: frequency {} vs probability {}",
                rank, n, exponent, freq, sampler.probability(rank)
            );
        }
        if exponent > 0.2 && n >= 4 {
            prop_assert!(
                counts[0] > counts[n - 1],
                "rank 0 ({}) must dominate the tail rank ({}) at s={}",
                counts[0], counts[n - 1], exponent
            );
        }
    }

    /// The same seed reproduces the same draw sequence exactly — the property
    /// the load harness relies on to replay identical workloads.
    #[test]
    fn sampling_is_deterministic_under_a_fixed_seed(
        n in 1usize..100,
        exponent in 0.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let sampler = ZipfSampler::new(n, exponent);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            prop_assert_eq!(sampler.sample(&mut a), sampler.sample(&mut b));
        }
    }

    /// Exponent 0 degenerates to the uniform distribution over every rank.
    #[test]
    fn exponent_zero_is_uniform(n in 1usize..200) {
        let sampler = ZipfSampler::new(n, 0.0);
        let uniform = 1.0 / n as f64;
        for rank in 0..n {
            prop_assert!(
                (sampler.probability(rank) - uniform).abs() < 1e-12,
                "rank {} of n={}: probability {} vs uniform {}",
                rank, n, sampler.probability(rank), uniform
            );
        }
    }

    /// A single-rank sampler always returns rank 0 with probability 1.
    #[test]
    fn single_rank_always_samples_zero(exponent in 0.0f64..3.0, seed in 0u64..1_000_000) {
        let sampler = ZipfSampler::new(1, exponent);
        prop_assert!((sampler.probability(0) - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(sampler.sample(&mut rng), 0);
        }
    }
}
