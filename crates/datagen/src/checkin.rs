//! Check-in records and datasets.

use corgi_geo::LatLng;
use corgi_hexgrid::{CellId, HexGrid};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single check-in, mirroring the Gowalla schema
/// `[user, check-in time, latitude, longitude, location id]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckIn {
    /// Numeric user identifier.
    pub user_id: u32,
    /// Check-in time as seconds since the Unix epoch.
    pub timestamp: i64,
    /// Geographic position of the check-in.
    pub location: LatLng,
    /// Identifier of the venue / point of interest.
    pub location_id: u32,
}

impl CheckIn {
    /// Hour of day (0–23) in the dataset's local time (UTC offset baked into the
    /// generator), used by the labelling heuristics.
    pub fn hour_of_day(&self) -> u8 {
        ((self.timestamp / 3600).rem_euclid(24)) as u8
    }
}

/// A collection of check-ins with convenience queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckInDataset {
    checkins: Vec<CheckIn>,
}

impl CheckInDataset {
    /// Wrap a vector of check-ins.
    pub fn new(checkins: Vec<CheckIn>) -> Self {
        Self { checkins }
    }

    /// All check-ins.
    pub fn checkins(&self) -> &[CheckIn] {
        &self.checkins
    }

    /// Number of check-ins.
    pub fn len(&self) -> usize {
        self.checkins.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.checkins.is_empty()
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        let mut users: Vec<u32> = self.checkins.iter().map(|c| c.user_id).collect();
        users.sort_unstable();
        users.dedup();
        users.len()
    }

    /// Check-ins of one user.
    pub fn for_user(&self, user_id: u32) -> Vec<&CheckIn> {
        self.checkins
            .iter()
            .filter(|c| c.user_id == user_id)
            .collect()
    }

    /// Count check-ins per leaf cell of a grid; check-ins outside the grid are
    /// ignored (the Gowalla sample is clipped to the region in the same way).
    pub fn counts_per_leaf(&self, grid: &HexGrid) -> Vec<usize> {
        let mut counts = vec![0usize; grid.leaf_count()];
        for c in &self.checkins {
            if let Ok(leaf) = grid.leaf_containing(&c.location) {
                if let Ok(idx) = grid.leaf_index(&leaf) {
                    counts[idx] += 1;
                }
            }
        }
        counts
    }

    /// The leaf cell of every check-in that falls inside the grid, in order.
    pub fn leaves(&self, grid: &HexGrid) -> Vec<(CheckIn, CellId)> {
        self.checkins
            .iter()
            .filter_map(|c| grid.leaf_containing(&c.location).ok().map(|l| (*c, l)))
            .collect()
    }

    /// Split into train/test portions (the paper uses 90% / 10%): the split is by
    /// check-in, shuffled with the provided RNG for reproducibility.
    pub fn split<R: Rng>(&self, train_fraction: f64, rng: &mut R) -> TrainTestSplit {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction must be within [0, 1]"
        );
        let mut shuffled = self.checkins.clone();
        shuffled.shuffle(rng);
        let cut = ((shuffled.len() as f64) * train_fraction).round() as usize;
        let (train, test) = shuffled.split_at(cut.min(shuffled.len()));
        TrainTestSplit {
            train: CheckInDataset::new(train.to_vec()),
            test: CheckInDataset::new(test.to_vec()),
        }
    }
}

/// Result of a train/test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Training portion (priors are computed from this part).
    pub train: CheckInDataset,
    /// Testing portion ("real locations" are sampled from this part).
    pub test: CheckInDataset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> CheckInDataset {
        let p = |lat: f64, lng: f64| LatLng::new(lat, lng).unwrap();
        CheckInDataset::new(vec![
            CheckIn {
                user_id: 1,
                timestamp: 3_600 * 10,
                location: p(37.7749, -122.4194),
                location_id: 7,
            },
            CheckIn {
                user_id: 1,
                timestamp: 3_600 * 23,
                location: p(37.7755, -122.4180),
                location_id: 8,
            },
            CheckIn {
                user_id: 2,
                timestamp: 3_600 * 14,
                location: p(37.7800, -122.4100),
                location_id: 7,
            },
        ])
    }

    #[test]
    fn basic_queries() {
        let ds = tiny_dataset();
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.for_user(1).len(), 2);
        assert_eq!(ds.checkins()[0].hour_of_day(), 10);
        assert_eq!(ds.checkins()[1].hour_of_day(), 23);
    }

    #[test]
    fn counts_per_leaf_sum_to_inside_checkins() {
        let grid = HexGrid::new(corgi_hexgrid::HexGridConfig::san_francisco()).unwrap();
        let ds = tiny_dataset();
        let counts = ds.counts_per_leaf(&grid);
        let total: usize = counts.iter().sum();
        assert_eq!(
            total, 3,
            "all tiny-dataset check-ins are inside the SF grid"
        );
        assert_eq!(ds.leaves(&grid).len(), 3);
    }

    #[test]
    fn split_preserves_total() {
        let ds = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let split = ds.split(0.67, &mut rng);
        assert_eq!(split.train.len() + split.test.len(), ds.len());
        assert_eq!(split.train.len(), 2);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn invalid_split_fraction_panics() {
        let ds = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = ds.split(1.5, &mut rng);
    }
}
