//! Zipf-distributed sampling of venue popularity.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to `1 / (rank + 1)^exponent`.
///
/// Venue popularity in location-based social networks is heavy-tailed; the
/// generator uses this sampler to reproduce the strong skew of check-in counts
/// per cell that the Gowalla San-Francisco sample exhibits.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` ranks with the given exponent (typically 0.8–1.2).
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "invalid Zipf exponent {exponent}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        let total = acc;
        for v in cumulative.iter_mut() {
            *v /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of a given rank.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[rank] - self.cumulative[rank - 1]
        }
    }

    /// Draw a rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(20, 1.0);
        let total: f64 = (0..20).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_ranks_are_more_probable() {
        let z = ZipfSampler::new(50, 1.0);
        for r in 1..50 {
            assert!(z.probability(r - 1) >= z.probability(r));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let draws = 20_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in 0..5 {
            let freq = counts[r] as f64 / draws as f64;
            assert!(
                (freq - z.probability(r)).abs() < 0.02,
                "rank {r}: {freq} vs {}",
                z.probability(r)
            );
        }
        // Rank 0 must dominate rank 4 clearly.
        assert!(counts[0] > counts[4] * 3);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_sampler_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
