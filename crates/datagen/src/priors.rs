//! Prior probability distributions over grid cells.
//!
//! The paper computes the prior of every leaf node by counting check-ins inside
//! it and aggregates priors of intermediate nodes from their children
//! (Section 6.1, "Priors").  A small smoothing mass keeps cells with zero
//! check-ins from having an exactly-zero prior, which would make the Geo-Ind
//! ratio in Eq. (2) degenerate.

use crate::CheckInDataset;
use corgi_hexgrid::{CellId, HexGrid};
use serde::{Deserialize, Serialize};

/// A prior probability distribution over the leaf cells of a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorDistribution {
    probs: Vec<f64>,
}

impl PriorDistribution {
    /// Rebuild a prior from raw per-leaf probabilities (wire decoding).
    ///
    /// Performs no normalization or validation — the values are taken exactly
    /// as given, mirroring what the derived serde `Deserialize` accepts, so a
    /// prior decoded from the binary wire codec compares equal to one decoded
    /// from JSON.
    pub fn from_probs(probs: Vec<f64>) -> Self {
        Self { probs }
    }

    /// Uniform prior over `n` leaves.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "prior over zero cells");
        Self {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// Build a prior from per-leaf check-in counts with additive smoothing
    /// (`smoothing` pseudo-counts per cell; the paper's counting corresponds to
    /// `smoothing = 0`, we default to a small value to avoid zero-mass cells).
    pub fn from_counts(counts: &[usize], smoothing: f64) -> Self {
        assert!(!counts.is_empty(), "prior over zero cells");
        assert!(
            smoothing >= 0.0 && smoothing.is_finite(),
            "invalid smoothing"
        );
        let total: f64 = counts.iter().map(|&c| c as f64 + smoothing).sum();
        assert!(total > 0.0, "all counts are zero and smoothing is zero");
        Self {
            probs: counts
                .iter()
                .map(|&c| (c as f64 + smoothing) / total)
                .collect(),
        }
    }

    /// Build a prior directly from a dataset over a grid.
    pub fn from_dataset(grid: &HexGrid, dataset: &CheckInDataset, smoothing: f64) -> Self {
        Self::from_counts(&dataset.counts_per_leaf(grid), smoothing)
    }

    /// Number of leaves covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the distribution covers no cells (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of the leaf with the given grid index.
    pub fn prob(&self, leaf_index: usize) -> f64 {
        self.probs[leaf_index]
    }

    /// The full probability vector, aligned with `grid.leaves()`.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Prior of an arbitrary cell: the sum of its descendant leaves' priors
    /// (`p_{v_i} = Σ_{v_m ∈ N(v_i)} p_{v_m}` in the paper's notation).
    pub fn prob_of_cell(&self, grid: &HexGrid, cell: &CellId) -> f64 {
        if cell.is_leaf() {
            return grid.leaf_index(cell).map(|i| self.probs[i]).unwrap_or(0.0);
        }
        cell.descendant_leaves()
            .iter()
            .map(|leaf| grid.leaf_index(leaf).map(|i| self.probs[i]).unwrap_or(0.0))
            .sum()
    }

    /// Priors of all cells at a level, in the same order as
    /// [`HexGrid::cells_at_level`]; they sum to 1.
    pub fn at_level(&self, grid: &HexGrid, level: u8) -> Vec<f64> {
        grid.cells_at_level(level)
            .iter()
            .map(|c| self.prob_of_cell(grid, c))
            .collect()
    }

    /// The prior restricted to the given leaves and re-normalized; used when an
    /// obfuscation matrix is generated for a single privacy-forest subtree.
    ///
    /// Returns `None` if the restricted mass is zero.
    pub fn restricted_to(&self, grid: &HexGrid, leaves: &[CellId]) -> Option<Vec<f64>> {
        let raw: Vec<f64> = leaves
            .iter()
            .map(|l| grid.leaf_index(l).map(|i| self.probs[i]).unwrap_or(0.0))
            .collect();
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some(raw.into_iter().map(|p| p / total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GowallaLikeConfig, GowallaLikeGenerator};
    use corgi_hexgrid::HexGridConfig;
    use proptest::prelude::*;

    fn grid() -> HexGrid {
        HexGrid::new(HexGridConfig::san_francisco()).unwrap()
    }

    #[test]
    fn uniform_prior_sums_to_one() {
        let p = PriorDistribution::uniform(49);
        assert_eq!(p.len(), 49);
        let total: f64 = p.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_normalizes_and_smooths() {
        let p = PriorDistribution::from_counts(&[0, 2, 8], 1.0);
        let total: f64 = p.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p.prob(0) > 0.0, "smoothing gives empty cells positive mass");
        assert!(p.prob(2) > p.prob(1));
    }

    #[test]
    #[should_panic(expected = "all counts are zero")]
    fn all_zero_without_smoothing_rejected() {
        let _ = PriorDistribution::from_counts(&[0, 0, 0], 0.0);
    }

    #[test]
    fn dataset_prior_matches_counts() {
        let grid = grid();
        let (ds, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let counts = ds.counts_per_leaf(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &ds, 0.0);
        let total_checkins: usize = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let expected = c as f64 / total_checkins as f64;
            assert!((prior.prob(i) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn cell_priors_aggregate_children() {
        let grid = grid();
        let (ds, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &ds, 0.5);
        // Root prior is 1, and each level sums to 1.
        assert!((prior.prob_of_cell(&grid, &grid.root()) - 1.0).abs() < 1e-9);
        for level in 0..=grid.height() {
            let level_sum: f64 = prior.at_level(&grid, level).iter().sum();
            assert!(
                (level_sum - 1.0).abs() < 1e-9,
                "level {level} sums to {level_sum}"
            );
        }
        // A parent's prior equals the sum of its children's priors.
        let parent = grid.cells_at_level(2)[3];
        let child_sum: f64 = parent
            .children()
            .iter()
            .map(|c| prior.prob_of_cell(&grid, c))
            .sum();
        assert!((prior.prob_of_cell(&grid, &parent) - child_sum).abs() < 1e-12);
    }

    #[test]
    fn restriction_renormalizes() {
        let grid = grid();
        let (ds, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &ds, 0.5);
        let subtree = grid.cells_at_level(2)[0].descendant_leaves();
        let restricted = prior.restricted_to(&grid, &subtree).unwrap();
        assert_eq!(restricted.len(), 49);
        let total: f64 = restricted.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn restriction_with_zero_mass_is_none() {
        let grid = grid();
        // A prior that puts everything on leaf 0.
        let mut counts = vec![0usize; grid.leaf_count()];
        counts[0] = 10;
        let prior = PriorDistribution::from_counts(&counts, 0.0);
        // Pick a subtree that does not contain leaf 0.
        let subtree = grid
            .cells_at_level(2)
            .into_iter()
            .find(|c| !c.is_ancestor_of(&grid.leaves()[0]))
            .unwrap();
        assert!(prior
            .restricted_to(&grid, &subtree.descendant_leaves())
            .is_none());
    }

    proptest! {
        /// from_counts always produces a normalized distribution with the same
        /// ordering as the counts.
        #[test]
        fn prop_from_counts_normalized(counts in proptest::collection::vec(0usize..500, 2..80)) {
            let p = PriorDistribution::from_counts(&counts, 0.1);
            let total: f64 = p.probs().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for i in 1..counts.len() {
                if counts[i] > counts[i - 1] {
                    prop_assert!(p.prob(i) > p.prob(i - 1));
                }
            }
        }
    }
}
