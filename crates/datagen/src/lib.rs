//! Synthetic Gowalla-like check-in data for the CORGI experiments.
//!
//! The paper evaluates CORGI on 38,523 Gowalla check-ins sampled from the San
//! Francisco region and derives from them (a) the prior probability of every leaf
//! cell, and (b) per-location metadata used to build realistic customization
//! policies (home, office, outlier, popular locations).  The original SNAP dump is
//! not redistributable with this repository and cannot be downloaded in the build
//! environment, so this crate generates a synthetic check-in stream with the same
//! structural properties:
//!
//! * a configurable number of users, each with a *home* and an *office* anchor
//!   cell where most of their check-ins concentrate;
//! * a set of shared *venues* whose popularity follows a Zipf law, producing the
//!   heavily skewed spatial prior that drives the paper's utility numbers;
//! * day/night temporal structure (office check-ins during working hours, home
//!   check-ins at night, venues in the evening);
//! * rare *outlier* visits far from a user's usual area and at odd hours.
//!
//! From the stream the crate computes the leaf [`PriorDistribution`] (check-in
//! counts normalized per cell, aggregated up the tree exactly as in Section 6.1)
//! and [`LocationMetadata`] labels using the same heuristics the paper describes.

#![warn(missing_docs)]

mod checkin;
mod generator;
mod labels;
mod priors;
mod workload;
mod zipf;

pub use checkin::{CheckIn, CheckInDataset, TrainTestSplit};
pub use generator::{GowallaLikeConfig, GowallaLikeGenerator};
pub use labels::{LocationMetadata, UserAnchors};
pub use priors::PriorDistribution;
pub use workload::{open_loop_arrivals, RequestMix};
pub use zipf::ZipfSampler;
