//! Open-loop serving-workload helpers: Poisson arrival processes and
//! Zipf-skewed request keys.
//!
//! The load harness in `corgi-bench` is *open-loop*: requests are issued at
//! scheduled arrival times drawn ahead of the run, regardless of how fast the
//! server answers — the workload shape a population of independent mobile
//! users produces, and the only shape that exposes queueing collapse (a
//! closed-loop driver slows down with the server and never pushes it past the
//! knee).  This module provides the two generator-side ingredients: a Poisson
//! arrival process and a Zipf-skewed sampler over `(privacy_level, δ)`
//! request keys, mirroring the venue-popularity skew of [`crate::ZipfSampler`]
//! at the request level.

use crate::ZipfSampler;
use rand::Rng;
use std::time::Duration;

/// Draw the arrival offsets of an open-loop Poisson process.
///
/// Returns the scheduled send time of every request as an offset from the
/// start of the run: inter-arrival gaps are exponential with mean
/// `1 / rate_hz`, so the expected count is `rate_hz * duration` and arrivals
/// are strictly increasing.  A load generator replays these offsets against
/// the wall clock and measures each request's latency from its *scheduled*
/// time, which keeps the measurement free of coordinated omission.
///
/// # Panics
/// Panics if `rate_hz` is not finite and positive.
pub fn open_loop_arrivals<R: Rng>(rate_hz: f64, duration: Duration, rng: &mut R) -> Vec<Duration> {
    assert!(
        rate_hz.is_finite() && rate_hz > 0.0,
        "invalid arrival rate {rate_hz}"
    );
    let horizon = duration.as_secs_f64();
    let mut arrivals = Vec::with_capacity((rate_hz * horizon).ceil() as usize);
    let mut t = 0.0;
    loop {
        // Inverse-CDF exponential gap; `1 - u` keeps ln away from zero.
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / rate_hz;
        if t >= horizon {
            return arrivals;
        }
        arrivals.push(Duration::from_secs_f64(t));
    }
}

/// A Zipf-skewed sampler over the `(privacy_level, δ)` request keys of a
/// serving workload.
///
/// The key space is the cross product of the given privacy levels and
/// δ ∈ `0..=max_delta` (the same grid a `WarmRequest` covers, so a mix can be
/// fully precomputed before the run); rank 0 (the hottest key) is the first
/// level at δ = 0, and popularity decays as `1 / (rank + 1)^exponent`.  An
/// exponent of 0 yields a uniform mix; around 1.0 reproduces the strong skew
/// a cache-warmed server sees in practice, where a handful of policy settings
/// dominate traffic.
#[derive(Debug, Clone)]
pub struct RequestMix {
    keys: Vec<(u8, usize)>,
    sampler: ZipfSampler,
}

impl RequestMix {
    /// Build a mix over `levels × (0..=max_delta)` with the given Zipf
    /// exponent.
    ///
    /// # Panics
    /// Panics if `levels` is empty or the exponent is not finite and
    /// non-negative (see [`ZipfSampler::new`]).
    pub fn new(levels: &[u8], max_delta: usize, exponent: f64) -> Self {
        assert!(!levels.is_empty(), "request mix needs at least one level");
        let mut keys = Vec::with_capacity(levels.len() * (max_delta + 1));
        for &level in levels {
            for delta in 0..=max_delta {
                keys.push((level, delta));
            }
        }
        let sampler = ZipfSampler::new(keys.len(), exponent);
        Self { keys, sampler }
    }

    /// The key space in rank order (rank 0 is the most popular).
    pub fn keys(&self) -> &[(u8, usize)] {
        &self.keys
    }

    /// Probability of the key at `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        self.sampler.probability(rank)
    }

    /// Draw one `(privacy_level, δ)` request key.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> (u8, usize) {
        self.keys[self.sampler.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_increasing_and_within_the_horizon() {
        let mut rng = StdRng::seed_from_u64(11);
        let horizon = Duration::from_secs(2);
        let arrivals = open_loop_arrivals(500.0, horizon, &mut rng);
        for pair in arrivals.windows(2) {
            assert!(pair[0] < pair[1], "arrival times strictly increase");
        }
        assert!(arrivals.iter().all(|t| *t < horizon));
    }

    #[test]
    fn arrival_count_matches_the_rate() {
        let mut rng = StdRng::seed_from_u64(23);
        // Expected 5000 arrivals; Poisson σ ≈ 71, so ±5% is a loose bound.
        let arrivals = open_loop_arrivals(1000.0, Duration::from_secs(5), &mut rng);
        let n = arrivals.len() as f64;
        assert!(
            (n - 5000.0).abs() < 250.0,
            "got {n} arrivals for an expected 5000"
        );
    }

    #[test]
    fn arrivals_are_deterministic_under_a_fixed_seed() {
        let a = open_loop_arrivals(200.0, Duration::from_secs(1), &mut StdRng::seed_from_u64(7));
        let b = open_loop_arrivals(200.0, Duration::from_secs(1), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn request_mix_covers_the_cross_product_in_rank_order() {
        let mix = RequestMix::new(&[3, 5], 2, 1.0);
        assert_eq!(
            mix.keys(),
            &[(3, 0), (3, 1), (3, 2), (5, 0), (5, 1), (5, 2)]
        );
        // Rank 0 is strictly the most popular under a positive exponent.
        assert!(mix.probability(0) > mix.probability(5));
    }

    #[test]
    fn request_mix_samples_only_declared_keys() {
        let mix = RequestMix::new(&[2, 4, 6], 1, 1.1);
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..1000 {
            let key = mix.sample(&mut rng);
            assert!(mix.keys().contains(&key));
        }
    }
}
