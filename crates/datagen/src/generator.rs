//! Synthetic Gowalla-like check-in generator.

use crate::{CheckIn, CheckInDataset, UserAnchors, ZipfSampler};
use corgi_geo::Vec2;
use corgi_hexgrid::{CellId, HexGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GowallaLikeConfig {
    /// Number of distinct users.
    pub num_users: usize,
    /// Total number of check-ins to generate (the paper's SF sample has 38,523).
    pub num_checkins: usize,
    /// Number of shared venues (restaurants, bars, parks, ...).
    pub num_venues: usize,
    /// Zipf exponent of the venue-popularity distribution.
    pub venue_zipf_exponent: f64,
    /// Zipf exponent of the per-user activity distribution.
    pub user_zipf_exponent: f64,
    /// Fraction of check-ins that are outlier visits (rare places, odd hours).
    pub outlier_fraction: f64,
    /// Spatial concentration of venues and homes towards the region center:
    /// cells are weighted by `exp(-distance_km / decay_km)`.
    pub center_decay_km: f64,
    /// RNG seed — the whole dataset is a pure function of the configuration.
    pub seed: u64,
    /// Timestamp (Unix seconds) of the first day of the simulated period.
    pub start_timestamp: i64,
    /// Length of the simulated period in days.
    pub duration_days: u32,
}

impl Default for GowallaLikeConfig {
    fn default() -> Self {
        Self {
            num_users: 400,
            num_checkins: 38_523,
            num_venues: 800,
            venue_zipf_exponent: 1.0,
            user_zipf_exponent: 0.8,
            outlier_fraction: 0.02,
            center_decay_km: 3.0,
            seed: 20_230_331,
            // 2010-01-01 00:00:00 UTC — the Gowalla dump covers 2009-2010.
            start_timestamp: 1_262_304_000,
            duration_days: 365,
        }
    }
}

impl GowallaLikeConfig {
    /// A small configuration for fast unit tests.
    pub fn small_test() -> Self {
        Self {
            num_users: 30,
            num_checkins: 2_000,
            num_venues: 60,
            seed: 7,
            ..Self::default()
        }
    }
}

/// Generator of Gowalla-like check-in streams over a [`HexGrid`].
#[derive(Debug, Clone)]
pub struct GowallaLikeGenerator {
    config: GowallaLikeConfig,
}

#[derive(Debug, Clone, Copy)]
enum CheckInKind {
    Home,
    Office,
    Venue,
    Outlier,
}

impl GowallaLikeGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: GowallaLikeConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GowallaLikeConfig {
        &self.config
    }

    /// Generate the dataset and the ground-truth user anchors.
    pub fn generate(&self, grid: &HexGrid) -> (CheckInDataset, UserAnchors) {
        let cfg = &self.config;
        assert!(
            cfg.num_users > 0 && cfg.num_venues > 0,
            "empty configuration"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Spatial weight of every leaf: concentrate activity towards the center,
        // mimicking the dense downtown core of the SF Gowalla sample.
        let root = grid.root();
        let center_weights: Vec<f64> = grid
            .leaves()
            .iter()
            .map(|leaf| {
                let d = grid.cell_distance_km(leaf, &root);
                (-d / cfg.center_decay_km).exp()
            })
            .collect();

        let sample_weighted_leaf = |rng: &mut StdRng| -> usize {
            let total: f64 = center_weights.iter().sum();
            let mut u = rng.gen::<f64>() * total;
            for (i, w) in center_weights.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    return i;
                }
            }
            center_weights.len() - 1
        };

        // Venues.
        let venue_cells: Vec<usize> = (0..cfg.num_venues)
            .map(|_| sample_weighted_leaf(&mut rng))
            .collect();
        let venue_sampler = ZipfSampler::new(cfg.num_venues, cfg.venue_zipf_exponent);

        // Users: home, office, activity.
        let mut homes = HashMap::new();
        let mut offices = HashMap::new();
        for user in 0..cfg.num_users as u32 {
            let home = sample_weighted_leaf(&mut rng);
            let office = sample_weighted_leaf(&mut rng);
            homes.insert(user, grid.leaves()[home]);
            offices.insert(user, grid.leaves()[office]);
        }
        let user_sampler = ZipfSampler::new(cfg.num_users, cfg.user_zipf_exponent);

        // Check-ins.
        let mut checkins = Vec::with_capacity(cfg.num_checkins);
        let mut outlier_visits: HashMap<u32, Vec<CellId>> = HashMap::new();
        let next_location_id = cfg.num_venues as u32;
        for _ in 0..cfg.num_checkins {
            let user = user_sampler.sample(&mut rng) as u32;
            let kind = {
                let roll: f64 = rng.gen();
                if roll < cfg.outlier_fraction {
                    CheckInKind::Outlier
                } else if roll < cfg.outlier_fraction + 0.30 {
                    CheckInKind::Home
                } else if roll < cfg.outlier_fraction + 0.55 {
                    CheckInKind::Office
                } else {
                    CheckInKind::Venue
                }
            };
            let (leaf, location_id, hour) = match kind {
                CheckInKind::Home => {
                    let leaf = homes[&user];
                    // Nights and early mornings.
                    let hour = *[21u8, 22, 23, 0, 1, 6, 7, 8]
                        .get(rng.gen_range(0..8usize))
                        .expect("index in range");
                    (leaf, next_location_id + user * 2, hour)
                }
                CheckInKind::Office => {
                    let leaf = offices[&user];
                    let hour = rng.gen_range(9..18) as u8;
                    (leaf, next_location_id + user * 2 + 1, hour)
                }
                CheckInKind::Venue => {
                    let venue = venue_sampler.sample(&mut rng);
                    let leaf = grid.leaves()[venue_cells[venue]];
                    let hour = rng.gen_range(11..24) as u8;
                    (leaf, venue as u32, hour)
                }
                CheckInKind::Outlier => {
                    let leaf_idx = rng.gen_range(0..grid.leaf_count());
                    let leaf = grid.leaves()[leaf_idx];
                    let hour = rng.gen_range(1..5) as u8;
                    outlier_visits.entry(user).or_default().push(leaf);
                    (
                        leaf,
                        next_location_id + cfg.num_users as u32 * 2 + rng.gen_range(0..10_000),
                        hour,
                    )
                }
            };
            let day = rng.gen_range(0..cfg.duration_days) as i64;
            let minute = rng.gen_range(0..60) as i64;
            let timestamp =
                cfg.start_timestamp + day * 86_400 + i64::from(hour) * 3_600 + minute * 60;
            let location = jitter_within_cell(grid, &leaf, &mut rng);
            checkins.push(CheckIn {
                user_id: user,
                timestamp,
                location,
                location_id,
            });
        }

        let anchors = UserAnchors::new(homes, offices, outlier_visits);
        (CheckInDataset::new(checkins), anchors)
    }
}

/// A uniformly random point well inside the hexagon of `leaf` (within 60 % of
/// the inradius, so the point always maps back to the same leaf).
fn jitter_within_cell(grid: &HexGrid, leaf: &CellId, rng: &mut StdRng) -> corgi_geo::LatLng {
    let inradius = grid.leaf_spacing_km() / 2.0;
    let radius = 0.6 * inradius * rng.gen::<f64>().sqrt();
    let angle = rng.gen::<f64>() * std::f64::consts::TAU;
    let offset = Vec2::new(radius * angle.cos(), radius * angle.sin());
    let planar = grid.layout().to_planar(leaf.center()) + offset;
    grid.projection().unproject(&planar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::HexGridConfig;

    fn grid() -> HexGrid {
        HexGrid::new(HexGridConfig::san_francisco()).unwrap()
    }

    #[test]
    fn generates_requested_number_of_checkins() {
        let grid = grid();
        let (ds, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        assert_eq!(ds.len(), 2_000);
        assert!(ds.num_users() <= 30);
        assert!(
            ds.num_users() > 5,
            "Zipf user sampling still hits many users"
        );
    }

    #[test]
    fn all_checkins_fall_inside_the_grid() {
        let grid = grid();
        let (ds, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        assert_eq!(ds.leaves(&grid).len(), ds.len());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let grid = grid();
        let cfg = GowallaLikeConfig::small_test();
        let (a, _) = GowallaLikeGenerator::new(cfg).generate(&grid);
        let (b, _) = GowallaLikeGenerator::new(cfg).generate(&grid);
        assert_eq!(a.checkins(), b.checkins());
        let mut cfg2 = cfg;
        cfg2.seed = 99;
        let (c, _) = GowallaLikeGenerator::new(cfg2).generate(&grid);
        assert_ne!(a.checkins(), c.checkins());
    }

    #[test]
    fn checkin_counts_are_spatially_skewed() {
        let grid = grid();
        let (ds, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let counts = ds.counts_per_leaf(&grid);
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        // Skew: the busiest cell carries far more than the average non-empty cell.
        let avg = ds.len() as f64 / nonzero as f64;
        assert!(max as f64 > 4.0 * avg, "max {max}, avg {avg}");
    }

    #[test]
    fn anchors_cover_users_with_checkins() {
        let grid = grid();
        let (ds, anchors) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        for c in ds.checkins().iter().take(200) {
            assert!(anchors.home_of(c.user_id).is_some());
            assert!(anchors.office_of(c.user_id).is_some());
        }
    }

    #[test]
    fn home_checkins_cluster_at_home_cell() {
        let grid = grid();
        let (ds, anchors) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        // For the most active user, a noticeable share of check-ins must fall in
        // the true home cell (30% of kinds are Home by construction).
        let user = ds.checkins()[0].user_id;
        let home = anchors.home_of(user).unwrap();
        let user_checkins = ds.for_user(user);
        let at_home = user_checkins
            .iter()
            .filter(|c| grid.leaf_containing(&c.location).unwrap() == home)
            .count();
        assert!(
            at_home as f64 >= 0.1 * user_checkins.len() as f64,
            "{at_home} of {}",
            user_checkins.len()
        );
    }
}
