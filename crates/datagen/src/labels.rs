//! Location metadata: the labels (home, office, popular, outlier) that user
//! customization policies refer to.
//!
//! The paper (Section 6.1) derives these labels from the Gowalla sample with
//! "simple heuristics": the user's home and office are their most-visited cells
//! during night and working hours respectively, outliers are cells a user visited
//! rarely and at odd times, and popular locations are those with many check-ins
//! overall.  [`LocationMetadata::from_dataset`] reproduces those heuristics.

use crate::CheckInDataset;
use corgi_hexgrid::{CellId, HexGrid};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Ground-truth anchors produced by the synthetic generator (useful for
/// validating the labelling heuristics against a known truth).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserAnchors {
    homes: HashMap<u32, CellId>,
    offices: HashMap<u32, CellId>,
    outliers: HashMap<u32, Vec<CellId>>,
}

impl UserAnchors {
    /// Create anchors from explicit maps.
    pub fn new(
        homes: HashMap<u32, CellId>,
        offices: HashMap<u32, CellId>,
        outliers: HashMap<u32, Vec<CellId>>,
    ) -> Self {
        Self {
            homes,
            offices,
            outliers,
        }
    }

    /// True home cell of a user.
    pub fn home_of(&self, user: u32) -> Option<CellId> {
        self.homes.get(&user).copied()
    }

    /// True office cell of a user.
    pub fn office_of(&self, user: u32) -> Option<CellId> {
        self.offices.get(&user).copied()
    }

    /// Cells visited as outliers by a user.
    pub fn outliers_of(&self, user: u32) -> &[CellId] {
        self.outliers.get(&user).map_or(&[], Vec::as_slice)
    }
}

/// Per-cell and per-user metadata inferred from a check-in dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationMetadata {
    /// Check-in count per leaf (aligned with `grid.leaves()`).
    counts: Vec<usize>,
    /// Minimum count for a cell to be labelled "popular".
    popular_threshold: usize,
    /// Inferred home cell per user.
    homes: HashMap<u32, CellId>,
    /// Inferred office cell per user.
    offices: HashMap<u32, CellId>,
    /// Inferred outlier cells per user.
    outliers: HashMap<u32, HashSet<CellId>>,
}

/// Hours treated as "night" (home time) by the heuristics.
const NIGHT_HOURS: [u8; 8] = [21, 22, 23, 0, 1, 2, 6, 7];
/// Hours treated as "working hours" (office time).
const WORK_HOURS: std::ops::Range<u8> = 9..18;
/// Hours treated as "odd" for the outlier heuristic.
const ODD_HOURS: std::ops::Range<u8> = 1..5;
/// A user must have visited a cell at most this many times for it to be an outlier.
const OUTLIER_MAX_VISITS: usize = 2;

impl LocationMetadata {
    /// Infer metadata from a dataset.
    ///
    /// `popular_quantile` (e.g. `0.9`) sets the check-in-count quantile above
    /// which a cell is labelled popular.
    pub fn from_dataset(grid: &HexGrid, dataset: &CheckInDataset, popular_quantile: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&popular_quantile),
            "popular quantile must be in [0, 1)"
        );
        let counts = dataset.counts_per_leaf(grid);

        // Popularity threshold from the quantile of non-zero counts.
        let mut nonzero: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
        nonzero.sort_unstable();
        let popular_threshold = if nonzero.is_empty() {
            usize::MAX
        } else {
            let idx = ((nonzero.len() as f64) * popular_quantile).floor() as usize;
            nonzero[idx.min(nonzero.len() - 1)].max(1)
        };

        // Per-user, per-cell visit histograms split by hour class.
        let mut night: HashMap<u32, HashMap<CellId, usize>> = HashMap::new();
        let mut work: HashMap<u32, HashMap<CellId, usize>> = HashMap::new();
        let mut odd: HashMap<u32, HashMap<CellId, usize>> = HashMap::new();
        let mut any: HashMap<u32, HashMap<CellId, usize>> = HashMap::new();
        for (checkin, leaf) in dataset.leaves(grid) {
            let hour = checkin.hour_of_day();
            let user = checkin.user_id;
            *any.entry(user).or_default().entry(leaf).or_insert(0) += 1;
            if NIGHT_HOURS.contains(&hour) {
                *night.entry(user).or_default().entry(leaf).or_insert(0) += 1;
            }
            if WORK_HOURS.contains(&hour) {
                *work.entry(user).or_default().entry(leaf).or_insert(0) += 1;
            }
            if ODD_HOURS.contains(&hour) {
                *odd.entry(user).or_default().entry(leaf).or_insert(0) += 1;
            }
        }

        let argmax = |m: &HashMap<CellId, usize>| -> Option<CellId> {
            m.iter()
                .max_by_key(|(cell, count)| (**count, cell.pack()))
                .map(|(cell, _)| *cell)
        };

        let homes: HashMap<u32, CellId> = night
            .iter()
            .filter_map(|(u, m)| argmax(m).map(|c| (*u, c)))
            .collect();
        let offices: HashMap<u32, CellId> = work
            .iter()
            .filter_map(|(u, m)| argmax(m).map(|c| (*u, c)))
            .collect();
        let mut outliers: HashMap<u32, HashSet<CellId>> = HashMap::new();
        for (user, cells) in &odd {
            let total_visits = &any[user];
            let set: HashSet<CellId> = cells
                .keys()
                .filter(|cell| total_visits.get(*cell).copied().unwrap_or(0) <= OUTLIER_MAX_VISITS)
                .copied()
                .collect();
            if !set.is_empty() {
                outliers.insert(*user, set);
            }
        }

        Self {
            counts,
            popular_threshold,
            homes,
            offices,
            outliers,
        }
    }

    /// Check-in count of a leaf (by its stable grid index).
    pub fn checkin_count(&self, leaf_index: usize) -> usize {
        self.counts[leaf_index]
    }

    /// All per-leaf check-in counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Whether the leaf at this grid index is popular.
    pub fn is_popular(&self, leaf_index: usize) -> bool {
        self.counts[leaf_index] >= self.popular_threshold
    }

    /// The popularity threshold actually used.
    pub fn popular_threshold(&self) -> usize {
        self.popular_threshold
    }

    /// Inferred home cell of a user.
    pub fn home_of(&self, user: u32) -> Option<CellId> {
        self.homes.get(&user).copied()
    }

    /// Inferred office cell of a user.
    pub fn office_of(&self, user: u32) -> Option<CellId> {
        self.offices.get(&user).copied()
    }

    /// Whether a cell is an inferred outlier location for the user.
    pub fn is_outlier(&self, user: u32, cell: &CellId) -> bool {
        self.outliers
            .get(&user)
            .is_some_and(|set| set.contains(cell))
    }

    /// Users for which a home cell could be inferred.
    pub fn users_with_home(&self) -> Vec<u32> {
        let mut users: Vec<u32> = self.homes.keys().copied().collect();
        users.sort_unstable();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GowallaLikeConfig, GowallaLikeGenerator};
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn setup() -> (HexGrid, CheckInDataset, UserAnchors, LocationMetadata) {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (ds, anchors) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let meta = LocationMetadata::from_dataset(&grid, &ds, 0.9);
        (grid, ds, anchors, meta)
    }

    #[test]
    fn popular_cells_are_a_minority_with_high_counts() {
        let (grid, _ds, _anchors, meta) = setup();
        let popular: Vec<usize> = (0..grid.leaf_count())
            .filter(|&i| meta.is_popular(i))
            .collect();
        assert!(!popular.is_empty());
        assert!(
            popular.len() < grid.leaf_count() / 4,
            "{} popular cells",
            popular.len()
        );
        let min_popular = popular
            .iter()
            .map(|&i| meta.checkin_count(i))
            .min()
            .unwrap();
        let max_unpopular = (0..grid.leaf_count())
            .filter(|&i| !meta.is_popular(i))
            .map(|i| meta.checkin_count(i))
            .max()
            .unwrap();
        assert!(min_popular > max_unpopular || min_popular >= meta.popular_threshold());
    }

    #[test]
    fn inferred_home_matches_ground_truth_for_active_users() {
        let (_grid, ds, anchors, meta) = setup();
        // Consider users with at least 50 check-ins: their night-time argmax
        // should usually be the true home cell.
        let mut checked = 0;
        let mut matched = 0;
        for user in meta.users_with_home() {
            if ds.for_user(user).len() >= 50 {
                checked += 1;
                if meta.home_of(user) == anchors.home_of(user) {
                    matched += 1;
                }
            }
        }
        assert!(checked > 0, "no active users in the test dataset");
        assert!(
            matched * 10 >= checked * 7,
            "home inference matched only {matched}/{checked}"
        );
    }

    #[test]
    fn office_inference_exists_for_active_users() {
        let (_grid, ds, _anchors, meta) = setup();
        for user in meta.users_with_home() {
            if ds.for_user(user).len() >= 50 {
                assert!(meta.office_of(user).is_some());
            }
        }
    }

    #[test]
    fn outliers_are_rarely_visited_cells() {
        let (grid, ds, _anchors, meta) = setup();
        for c in ds.checkins() {
            let leaf = grid.leaf_containing(&c.location).unwrap();
            if meta.is_outlier(c.user_id, &leaf) {
                let visits = ds
                    .for_user(c.user_id)
                    .iter()
                    .filter(|cc| grid.leaf_containing(&cc.location).unwrap() == leaf)
                    .count();
                assert!(visits <= OUTLIER_MAX_VISITS);
            }
        }
    }

    #[test]
    #[should_panic(expected = "popular quantile")]
    fn invalid_quantile_rejected() {
        let (grid, ds, _anchors, _meta) = setup();
        let _ = LocationMetadata::from_dataset(&grid, &ds, 1.5);
    }
}
