//! Overload behaviour as a tested contract.
//!
//! Drives the real `TcpServer` with the open-loop load harness at twice the
//! measured saturation point (the "knee") of a service with a fixed, known
//! cost per request, and asserts the admission-control contract:
//!
//! - excess load is shed with structured, retryable `Overloaded` errors —
//!   never by hanging a request or poisoning its connection;
//! - every scheduled request resolves within its deadline
//!   (`completed == offered`);
//! - goodput under 2× overload stays within 20% of the knee (shedding does
//!   not collapse throughput);
//! - server-side memory stays bounded: the read-buffer high-water mark never
//!   exceeds one maximal frame plus the refill slack.

use corgi::core::LocationTree;
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::{MatrixRequest, PrivacyForestResponse, ServiceError};
use corgi::framework::transport::FRAME_HEADER_LEN;
use corgi::framework::{
    ForestGenerator, MatrixService, ServerConfig, TcpServer, TcpTransport, TransportConfig,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use corgi_bench::loadgen::{run, LoadProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A service with a fixed, known cost per request: sleeps for a constant
/// service time and returns a pre-generated response.  With `t` dispatch
/// threads the serving capacity (the knee) is exactly `t / service_time`
/// requests per second, which makes "2× overload" a precise statement.
struct SlowService {
    inner: ForestGenerator,
    canned: Arc<PrivacyForestResponse>,
    service_time: Duration,
}

impl SlowService {
    fn new(service_time: Duration) -> Self {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        let inner = ForestGenerator::new(
            LocationTree::new(grid),
            prior,
            ServerConfig::builder()
                .robust_iterations(1)
                .targets_per_subtree(3)
                .worker_threads(2)
                .build(),
        );
        let canned = inner
            .privacy_forest(MatrixRequest {
                privacy_level: 1,
                delta: 0,
            })
            .expect("generating the canned response");
        Self {
            inner,
            canned,
            service_time,
        }
    }
}

impl MatrixService for SlowService {
    fn privacy_forest(
        &self,
        _request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        std::thread::sleep(self.service_time);
        Ok(Arc::clone(&self.canned))
    }

    fn tree(&self) -> Arc<LocationTree> {
        self.inner.tree()
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        self.inner.prior()
    }
}

#[test]
fn saturation_sheds_structured_errors_and_keeps_goodput() {
    const SERVICE_TIME: Duration = Duration::from_millis(4);
    const DISPATCH_THREADS: usize = 2;

    let config = TransportConfig {
        dispatch_threads: DISPATCH_THREADS,
        max_dispatch_backlog: 8,
        ..TransportConfig::default()
    };
    let max_inbound_frame = config.max_inbound_frame;
    let service = Arc::new(SlowService::new(SERVICE_TIME));
    let server = TcpServer::bind("127.0.0.1:0", service as Arc<dyn MatrixService>, config)
        .expect("binding the overload server");
    let addr = server.local_addr();

    // Measure the knee instead of trusting the constants: serial requests on
    // one connection see service time plus transport overhead, so
    // `threads / mean_latency` is a slightly conservative capacity estimate.
    let probe = TcpTransport::connect(addr).expect("probe connection");
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let probe_start = Instant::now();
    let probe_count = 30;
    for _ in 0..probe_count {
        probe.privacy_forest(request).expect("unloaded request");
    }
    let mean_latency = probe_start.elapsed() / probe_count;
    let knee_rps = DISPATCH_THREADS as f64 / mean_latency.as_secs_f64();
    drop(probe);

    // Offer 2× the knee.  Spread over enough connections that each one's
    // synchronous exchange keeps up with its slice of the schedule — the
    // offered process must not degrade into a closed loop.
    let profile = LoadProfile {
        connections: 32,
        rate_hz: 2.0 * knee_rps,
        duration: Duration::from_millis(2500),
        levels: vec![1],
        max_delta: 0,
        zipf_exponent: 0.0,
        churn_every: 0,
        seed: 7,
        request_timeout: Duration::from_secs(5),
    };
    let report = run(addr, &profile);
    let stats = server.stats();
    server.shutdown();

    // Nothing hangs: every scheduled request resolved within its deadline.
    assert_eq!(
        report.completed, report.offered,
        "every request must resolve: {report:?}"
    );
    assert_eq!(
        report.errors, 0,
        "overload must not produce hard errors: {report:?}"
    );
    assert_eq!(
        report.ok + report.shed,
        report.completed,
        "every completion is a success or a shed: {report:?}"
    );

    // At 2× the knee roughly half the load must be shed — and every shed is
    // the server's structured Overloaded reply (the client counts only
    // retryable errors as sheds), so the two tallies agree exactly and no
    // connection was poisoned or replaced.
    assert!(report.shed > 0, "2x overload must shed: {report:?}");
    assert_eq!(stats.requests_shed, report.shed as u64, "{stats:?}");
    assert_eq!(
        report.reconnects, 0,
        "sheds must not poison connections: {report:?}"
    );
    assert_eq!(stats.poisoned_connections, 0, "{stats:?}");

    // Shedding protects goodput: the served fraction stays within 20% of the
    // measured knee instead of collapsing under queueing.
    let goodput = report.goodput_rps();
    assert!(
        goodput >= 0.8 * knee_rps,
        "goodput {goodput:.0} req/s fell below 80% of the knee {knee_rps:.0} req/s: {report:?}"
    );

    // Bounded memory: the admission path answers from the reactor without
    // buffering shed requests, so no read buffer ever exceeds one maximal
    // frame plus the documented refill slack.
    let read_buffer_bound = (max_inbound_frame + FRAME_HEADER_LEN + 4096) as u64;
    assert!(
        stats.read_buffer_high_water <= read_buffer_bound,
        "read-buffer high water {} exceeds the bound {}",
        stats.read_buffer_high_water,
        read_buffer_bound
    );

    // The latency histogram is coherent: percentiles are ordered and capped
    // by the exact maximum.
    let hist = &report.histogram;
    assert_eq!(hist.count(), report.ok as u64);
    let p50 = hist.percentile(50.0);
    let p99 = hist.percentile(99.0);
    assert!(
        p50 <= p99 && p99 <= hist.max_ns(),
        "p50 {p50}, p99 {p99}, max {}",
        hist.max_ns()
    );
}
