//! Property tests of the 1.2 wire codecs: for randomized envelopes the binary
//! and JSON codecs must decode to the *same* message, and the binary codec
//! must round-trip every `f64` bit pattern exactly (NaN payloads, ±0,
//! subnormals — values JSON text cannot always carry).

use corgi::core::ObfuscationMatrix;
use corgi::framework::messages::{
    ForestEntry, MatrixRequest, PrivacyForestResponse, RequestEnvelope, ResponseEnvelope,
};
use corgi::framework::transport::try_decode_frame;
use corgi::framework::{WarmRequest, WireCodec};
use corgi::hexgrid::{CellId, HexGrid, HexGridConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn level1_roots() -> Vec<CellId> {
    HexGrid::new(HexGridConfig::san_francisco())
        .unwrap()
        .cells_at_level(1)
}

/// A forest over `roots` subtrees whose matrix entries are generated from the
/// drawn values (cycled across all k² slots).
fn forest_from(values: &[f64], subtrees: usize, request: MatrixRequest) -> PrivacyForestResponse {
    let entries: Vec<ForestEntry> = level1_roots()
        .into_iter()
        .take(subtrees.max(1))
        .enumerate()
        .map(|(i, root)| {
            let cells = root.descendant_leaves();
            let k = cells.len();
            let data: Vec<f64> = (0..k * k).map(|j| values[(i + j) % values.len()]).collect();
            ForestEntry {
                subtree_root: root,
                matrix: ObfuscationMatrix::from_wire_parts(cells, data).unwrap(),
            }
        })
        .collect();
    PrivacyForestResponse {
        request,
        epsilon: values[0],
        entries,
    }
}

fn decode_frame<M: corgi::framework::WireMessage>(codec: WireCodec, frame: Vec<u8>) -> (M, usize) {
    let mut buf = frame;
    let (kind, payload) = try_decode_frame(&mut buf, usize::MAX).unwrap().unwrap();
    assert_eq!(kind, M::KIND);
    assert!(buf.is_empty(), "frame length must cover the whole payload");
    (codec.decode_payload(&payload).unwrap(), payload.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary and JSON agree on randomized (finite-valued) response
    /// envelopes: the same decoded message from either codec, and binary is
    /// always the smaller wire image.
    #[test]
    fn binary_and_json_decode_the_same_envelope(
        values in proptest::collection::vec(-1.0e12f64..1.0e12, 1..24),
        subtrees in 1usize..8,
        request_id in 0u64..(1 << 53),
        privacy_level in 0u8..4,
        delta in 0usize..16,
    ) {
        let request = MatrixRequest { privacy_level, delta };
        let envelope =
            ResponseEnvelope::forest(request_id, Arc::new(forest_from(&values, subtrees, request)));

        let (from_binary, binary_len): (ResponseEnvelope, usize) =
            decode_frame(WireCodec::Binary, WireCodec::Binary.encode_frame(&envelope));
        let (from_json, json_len): (ResponseEnvelope, usize) =
            decode_frame(WireCodec::Json, WireCodec::Json.encode_frame(&envelope));

        prop_assert_eq!(&from_binary, &envelope);
        prop_assert_eq!(&from_json, &envelope);
        prop_assert_eq!(&from_binary, &from_json);
        prop_assert!(binary_len < json_len, "binary {} >= json {}", binary_len, json_len);
    }

    /// Request envelopes and warm plans agree across codecs too.
    #[test]
    fn small_messages_decode_the_same_from_either_codec(
        request_id in 0u64..(1 << 53),
        privacy_level in 0u8..8,
        delta in 0usize..64,
        levels in proptest::collection::vec(0usize..8, 1..5),
        deltas in proptest::collection::vec(0usize..64, 1..5),
    ) {
        let envelope = RequestEnvelope::new(request_id, MatrixRequest { privacy_level, delta });
        let (bin, _): (RequestEnvelope, usize) =
            decode_frame(WireCodec::Binary, WireCodec::Binary.encode_frame(&envelope));
        let (json, _): (RequestEnvelope, usize) =
            decode_frame(WireCodec::Json, WireCodec::Json.encode_frame(&envelope));
        prop_assert_eq!(bin, envelope);
        prop_assert_eq!(json, envelope);

        let plan = WarmRequest {
            privacy_levels: levels.iter().map(|&l| l as u8).collect(),
            deltas,
        };
        let (bin, _): (WarmRequest, usize) =
            decode_frame(WireCodec::Binary, WireCodec::Binary.encode_frame(&plan));
        let (json, _): (WarmRequest, usize) =
            decode_frame(WireCodec::Json, WireCodec::Json.encode_frame(&plan));
        prop_assert_eq!(&bin, &plan);
        prop_assert_eq!(&json, &plan);
    }

    /// The binary codec is bit-exact for *arbitrary* `f64` bit patterns,
    /// including NaNs with payloads, infinities, ±0 and subnormals.  (JSON
    /// text renders non-finite values as `null` and `-0` as `0`, so this
    /// guarantee is binary-only — and is why robustness metadata survives the
    /// binary wire unchanged.)
    #[test]
    fn binary_round_trip_is_bit_exact_for_any_f64_bits(
        bits in proptest::collection::vec(0u64..u64::MAX, 4..16),
    ) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let request = MatrixRequest { privacy_level: 1, delta: 0 };
        let envelope = ResponseEnvelope::forest(7, Arc::new(forest_from(&values, 2, request)));
        let (back, _): (ResponseEnvelope, usize) =
            decode_frame(WireCodec::Binary, WireCodec::Binary.encode_frame(&envelope));
        let forest = back.into_result().unwrap();
        for (entry, original) in forest.entries.iter().zip(
            match &envelope.payload {
                corgi::framework::messages::ResponsePayload::Forest(f) => f.entries.iter(),
                corgi::framework::messages::ResponsePayload::Error(e) => panic!("forest: {e}"),
            },
        ) {
            prop_assert_eq!(entry.subtree_root, original.subtree_root);
            prop_assert_eq!(entry.matrix.cells(), original.matrix.cells());
            for (got, want) in entry.matrix.data().iter().zip(original.matrix.data()) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }
}
