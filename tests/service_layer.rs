//! Integration tests of the serving stack: full-tree requests through
//! `CachingService<ForestGenerator>`, single-flight deduplication under real
//! thread contention, the cache capacity bound, and the concurrent-vs-serial
//! compute path.

use corgi::core::LocationTree;
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::{
    MatrixRequest, PrivacyForestResponse, RequestEnvelope, ResponseEnvelope,
};
use corgi::framework::{
    warm, CacheConfig, CachingService, ForestGenerator, MatrixService, ServerConfig, ServiceError,
    WarmRequest,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn generator(worker_threads: usize) -> ForestGenerator {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .worker_threads(worker_threads)
            .build(),
    )
}

#[test]
fn full_tree_request_completes_through_the_caching_stack() {
    // Privacy level 0 roots a subtree at every leaf: the privacy forest covers
    // the full tree with K = 343 subtrees (the ROADMAP's full-tree regime).
    let service = CachingService::with_defaults(generator(0));
    let request = MatrixRequest {
        privacy_level: 0,
        delta: 1,
    };
    let response = service.privacy_forest(request).unwrap();
    assert_eq!(response.entries.len(), 343);
    for entry in &response.entries {
        assert_eq!(entry.subtree_root.level(), 0);
        entry.matrix.check_stochastic(1e-9).unwrap();
    }
    // The repeat request is answered from the cache with the same Arc.
    let again = service.privacy_forest(request).unwrap();
    assert!(Arc::ptr_eq(&response, &again));
    assert_eq!(service.cache_stats().hits, 1);
}

/// Test double: counts how many times the wrapped generator actually runs and
/// holds each generation long enough for concurrent callers to pile up.
struct SlowCountingService {
    inner: ForestGenerator,
    generations: AtomicUsize,
}

impl MatrixService for SlowCountingService {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        self.generations.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(200));
        self.inner.privacy_forest(request)
    }

    fn tree(&self) -> Arc<LocationTree> {
        self.inner.tree()
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        self.inner.prior()
    }
}

#[test]
fn concurrent_same_key_requests_are_single_flight() {
    let threads = 8;
    let service = Arc::new(CachingService::with_defaults(SlowCountingService {
        inner: generator(1),
        generations: AtomicUsize::new(0),
    }));
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service
                    .privacy_forest(MatrixRequest {
                        privacy_level: 1,
                        delta: 0,
                    })
                    .unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Exactly one generation ran; every caller got the very same Arc.
    assert_eq!(service.inner().generations.load(Ordering::SeqCst), 1);
    for response in &responses[1..] {
        assert!(Arc::ptr_eq(&responses[0], response));
    }
    let stats = service.cache_stats().expect("caching layer reports stats");
    assert_eq!(stats.hits + stats.misses, threads as u64);
    assert!(stats.coalesced <= stats.misses);
}

#[test]
fn warming_coalesces_with_concurrent_live_traffic() {
    // A warming pass and live requests racing on the same key must elect one
    // generation between them: warming goes through the same single-flight
    // caching layer as organic traffic.
    let threads = 4;
    let service = Arc::new(CachingService::with_defaults(SlowCountingService {
        inner: generator(1),
        generations: AtomicUsize::new(0),
    }));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let warmer = {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            warm(service.as_ref(), &WarmRequest::level(1, 0))
        })
    };
    let live: Vec<_> = (0..threads)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service
                    .privacy_forest(MatrixRequest {
                        privacy_level: 1,
                        delta: 0,
                    })
                    .unwrap()
            })
        })
        .collect();
    let report = warmer.join().unwrap();
    assert!(report.is_complete());
    for handle in live {
        handle.join().unwrap();
    }
    assert_eq!(
        service.inner().generations.load(Ordering::SeqCst),
        1,
        "warming and live traffic must share one generation"
    );
}

#[test]
fn cache_evicts_above_its_configured_capacity() {
    let service = CachingService::new(
        generator(0),
        CacheConfig {
            capacity: 3,
            shards: 2,
        },
    );
    for delta in 0..6usize {
        service
            .privacy_forest(MatrixRequest {
                privacy_level: 1,
                delta,
            })
            .unwrap();
    }
    let stats = service.cache_stats();
    // The capacity is split exactly across shards (2 + 1 here), so total
    // residency never exceeds the configured bound — and something was evicted.
    assert!(
        stats.entries <= 3,
        "cache grew to {} entries despite capacity 3",
        stats.entries
    );
    assert!(stats.evictions >= 3);
    assert_eq!(stats.misses, 6);
}

#[test]
fn pooled_generation_beats_serial_on_a_multicore_runner() {
    // Equivalence needs equal warm-seed histories: a generator's first solve
    // of a key inserts a seed, and a second solve of the same key on the SAME
    // generator would warm-start from it — converging to the same optimum but
    // not the bit-identical iterate.  Two fresh generators (both with empty
    // stores) isolate the one variable under test: the worker pool.
    let serial_generator = generator(0);
    let generator = generator(0);
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 1,
    };
    // Warm both paths once (lazy allocations, page faults).
    let pooled = generator.generate(request).unwrap();
    let serial = serial_generator.generate_serial(request).unwrap();
    assert_eq!(pooled, serial, "the pool must not change the result");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        // On small machines the speed-up is not reliably measurable; the
        // equivalence assertion above still ran. The dedicated benchmark
        // (`cargo bench -p corgi-bench` → serving_benches) covers timing.
        return;
    }
    // Best-of-3 per path keeps the assertion above scheduler noise (other
    // test binaries run concurrently with this one).
    let time_best_of = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let serial_time = time_best_of(&|| {
        generator.generate_serial(request).unwrap();
    });
    let pooled_time = time_best_of(&|| {
        generator.generate(request).unwrap();
    });
    assert!(
        pooled_time < serial_time,
        "49 independent subtree solves on {cores} cores must beat the serial path: pooled {pooled_time:?} vs serial {serial_time:?}"
    );
}

#[test]
fn wire_protocol_round_trips_as_json_through_the_stack() {
    let service = CachingService::with_defaults(generator(0));
    let envelope = RequestEnvelope::new(
        99,
        MatrixRequest {
            privacy_level: 1,
            delta: 0,
        },
    );
    // Client → JSON → server.
    let wire = serde_json::to_string(&envelope).unwrap();
    let received: RequestEnvelope = serde_json::from_str(&wire).unwrap();
    let reply = service.handle_envelope(&received);
    // Server → JSON → client.
    let wire = serde_json::to_string(&reply).unwrap();
    let received: ResponseEnvelope = serde_json::from_str(&wire).unwrap();
    assert_eq!(received.request_id, 99);
    let forest = received.into_result().unwrap();
    assert_eq!(forest.entries.len(), 49);
}
