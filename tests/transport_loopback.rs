//! Loopback TCP integration tests of the event-driven serving core: the full
//! client flow across a real socket, ≥ 64 concurrent in-flight requests
//! through one reactor thread, cache warming over the wire, and the
//! malformed-input paths of the frame protocol.

use corgi::core::{LocationTree, Policy};
use corgi::datagen::{
    GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution,
};
use corgi::framework::messages::{
    MatrixRequest, PrivacyForestResponse, ProtocolVersion, RequestEnvelope, ResponseEnvelope,
    ServiceError, ServiceErrorKind, PROTOCOL_VERSION,
};
use corgi::framework::transport::{
    encode_frame, FrameKind, HelloFrame, HelloReply, FRAME_HEADER_LEN, FRAME_MAGIC,
};
use corgi::framework::{
    CachingService, ClientConfig, CorgiClient, ForestGenerator, MatrixService,
    MetadataAttributeProvider, ServerConfig, TcpServer, TcpTransport, TransportConfig, WarmRequest,
    WireCodec,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn caching_stack() -> Arc<CachingService<ForestGenerator>> {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    Arc::new(CachingService::with_defaults(ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(1)
            .targets_per_subtree(3)
            .worker_threads(2)
            .build(),
    )))
}

fn start_server(service: Arc<dyn MatrixService>) -> TcpServer {
    TcpServer::bind("127.0.0.1:0", service, TransportConfig::default())
        .expect("binding a loopback server")
}

/// A server that accepts both codecs regardless of `CORGI_WIRE_CODEC`, so the
/// negotiation-matrix assertions are deterministic under the forced-JSON CI
/// run (which only forces the *default* advertisement).
fn start_dual_codec_server(service: Arc<dyn MatrixService>) -> TcpServer {
    let config = TransportConfig {
        codecs: vec![WireCodec::Binary, WireCodec::Json],
        ..TransportConfig::default()
    };
    TcpServer::bind("127.0.0.1:0", service, config).expect("binding a loopback server")
}

/// Blocking frame receive used by the raw-socket tests.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    assert_eq!(header[0..2], FRAME_MAGIC, "server always frames correctly");
    let len = u32::from_be_bytes([header[3], header[4], header[5], header[6]]) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok((header[2], payload))
}

/// Raw hello exchange.  `codecs: None` mimics a pre-1.2 peer (JSON only);
/// the raw-socket tests below keep speaking JSON after it, which is exactly
/// the 1.1 interop path.
fn send_hello_advertising(
    stream: &mut TcpStream,
    version: ProtocolVersion,
    codecs: Option<Vec<String>>,
) -> HelloReply {
    let hello = serde_json::to_string(&HelloFrame {
        version,
        codecs,
        auth: None,
    })
    .unwrap();
    stream
        .write_all(&encode_frame(FrameKind::Hello, hello.as_bytes()))
        .unwrap();
    let (kind, payload) = read_frame(stream).unwrap();
    assert_eq!(kind, FrameKind::HelloReply as u8);
    serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap()
}

fn send_hello(stream: &mut TcpStream, version: ProtocolVersion) -> HelloReply {
    send_hello_advertising(stream, version, None)
}

#[test]
fn client_flow_works_across_a_real_socket() {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
    let server = start_server(caching_stack());

    // The transport mirrors the server's public state through the handshake…
    let transport = Arc::new(TcpTransport::connect(server.local_addr()).unwrap());
    assert!(PROTOCOL_VERSION.is_compatible_with(&transport.server_version()));
    assert_eq!(transport.tree().leaves().len(), 343);

    // …so the unchanged trusted-device client (Algorithm 4) runs over TCP.
    let user = metadata.users_with_home()[0];
    let real = grid.cell_center(&metadata.home_of(user).unwrap());
    let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
    let client = CorgiClient::new(
        transport.clone() as Arc<dyn MatrixService>,
        Policy::new(1, 0, vec![]).unwrap(),
        provider,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let outcome = client
        .generate_obfuscated_location(&real, &mut rng)
        .unwrap();
    let tree = transport.tree();
    let subtree = tree.subtree_containing(&outcome.real_leaf, 1).unwrap();
    assert!(subtree.contains(&outcome.report.reported_cell));
    server.shutdown();
}

#[test]
fn sixty_four_inflight_requests_through_one_reactor_thread() {
    // The acceptance bar of the event-driven core: 8 connections × 8
    // pipelined requests = 64 concurrently in-flight envelopes, all decoded,
    // dispatched and answered by a single reactor thread in front of the
    // solver pool.
    let caching = caching_stack();
    let server = start_server(caching.clone() as Arc<dyn MatrixService>);
    let addr = server.local_addr();

    let connections = 8usize;
    let per_connection = 8usize;
    // Four distinct (privacy_level, δ) keys spread over the 64 requests: the
    // cache's single-flight must collapse them to exactly four generations.
    let key_of = move |conn: usize, slot: usize| (conn * per_connection + slot) % 4;

    let handles: Vec<_> = (0..connections)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                match send_hello(&mut stream, PROTOCOL_VERSION) {
                    HelloReply::Accepted { .. } => {}
                    HelloReply::Rejected(e) => panic!("hello rejected: {e}"),
                }
                // Pipeline all 8 requests before reading a single response.
                for slot in 0..per_connection {
                    let envelope = RequestEnvelope::new(
                        slot as u64 + 1,
                        MatrixRequest {
                            privacy_level: 1,
                            delta: key_of(conn, slot),
                        },
                    );
                    let json = serde_json::to_string(&envelope).unwrap();
                    stream
                        .write_all(&encode_frame(FrameKind::Request, json.as_bytes()))
                        .unwrap();
                }
                // Responses arrive in completion order; collect and match by id.
                let mut seen = vec![false; per_connection];
                for _ in 0..per_connection {
                    let (kind, payload) = read_frame(&mut stream).unwrap();
                    assert_eq!(kind, FrameKind::Response as u8);
                    let reply: ResponseEnvelope =
                        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
                    let id = reply.request_id as usize;
                    assert!((1..=per_connection).contains(&id), "unknown id {id}");
                    assert!(!seen[id - 1], "duplicate response for id {id}");
                    seen[id - 1] = true;
                    let forest = reply.into_result().unwrap();
                    assert_eq!(forest.entries.len(), 49, "level-1 forest");
                    assert_eq!(forest.request.delta, key_of(conn, id - 1));
                }
                assert!(seen.iter().all(|&s| s), "every request answered");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("connection thread");
    }

    // Cache-deduplicated: 64 requests, exactly 4 generations ran (the other
    // 60 were hits or coalesced onto an in-flight generation).
    let stats = caching.cache_stats().unwrap();
    assert_eq!(stats.hits + stats.misses, 64);
    assert_eq!(
        stats.misses - stats.coalesced,
        4,
        "single-flight must collapse 64 requests onto 4 generations: {stats:?}"
    );
    assert_eq!(stats.entries, 4);
    server.shutdown();
}

#[test]
fn warming_over_the_wire_makes_steady_state_solve_free() {
    let caching = caching_stack();
    let server = start_server(caching.clone() as Arc<dyn MatrixService>);
    let transport = TcpTransport::connect(server.local_addr()).unwrap();

    // Cold cache: nothing resident.
    assert_eq!(caching.cache_stats().unwrap().entries, 0);

    // Warm the level-1 grid for δ ∈ 0..=2 through the Warm frame.
    let plan = WarmRequest::level(1, 2);
    let report = transport.warm(&plan).unwrap();
    assert!(report.is_complete(), "failures: {:?}", report.failures);
    assert_eq!(report.warmed, 3);
    let warmed = caching.cache_stats().unwrap();
    assert_eq!(warmed.entries, 3);

    // Steady state: the whole grid is served without a single further LP
    // solve — every request is a cache hit.
    for delta in 0..=2usize {
        let forest = transport
            .privacy_forest(MatrixRequest {
                privacy_level: 1,
                delta,
            })
            .unwrap();
        assert_eq!(forest.entries.len(), 49);
    }
    let stats = caching.cache_stats().unwrap();
    assert_eq!(stats.hits, 3, "all steady-state requests were hits");
    assert_eq!(stats.misses, warmed.misses, "no post-warm generations");
    server.shutdown();
}

#[test]
fn codec_negotiation_matrix_across_real_sockets() {
    let caching = caching_stack();
    let server = start_dual_codec_server(caching.clone() as Arc<dyn MatrixService>);
    let addr = server.local_addr();
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };

    // Default 1.2 client vs default 1.2 server: whatever the environment
    // advertises first (binary unless CORGI_WIRE_CODEC=json forces the
    // fallback) is what gets negotiated — and the full request path works.
    let expected = WireCodec::advertisement_from_env()[0];
    let transport = TcpTransport::connect(addr).unwrap();
    assert_eq!(transport.codec(), expected);
    assert_eq!(transport.privacy_forest(request).unwrap().entries.len(), 49);
    let stats = transport.stats();
    assert_eq!(stats.connections_accepted, 1);
    assert!(stats.frames_out >= 2, "hello + request: {stats:?}");
    assert!(stats.frames_in >= 2, "hello reply + response: {stats:?}");
    assert!(stats.bytes_in > stats.bytes_out, "forests dwarf requests");
    assert_eq!(stats.poisoned_connections, 0);

    // A client that only offers JSON gets JSON, whatever the server prefers.
    let json_client = TcpTransport::connect_with(
        addr,
        ClientConfig {
            codecs: vec![WireCodec::Json],
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(json_client.codec(), WireCodec::Json);
    assert_eq!(
        json_client.privacy_forest(request).unwrap().entries.len(),
        49
    );

    // A pre-1.2 hello (no codec list) negotiates JSON: the reply does not
    // name a codec and subsequent JSON framing is served as JSON.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    match send_hello(&mut stream, ProtocolVersion { major: 1, minor: 1 }) {
        HelloReply::Accepted { codec, .. } => assert_eq!(codec, None),
        HelloReply::Rejected(e) => panic!("1.1 hello rejected: {e}"),
    }
    let envelope = RequestEnvelope::new(5, request);
    let json = serde_json::to_string(&envelope).unwrap();
    stream
        .write_all(&encode_frame(FrameKind::Request, json.as_bytes()))
        .unwrap();
    let (kind, payload) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Response as u8);
    assert_eq!(
        payload[0], b'{',
        "a JSON-negotiated peer gets JSON payloads"
    );
    let reply: ResponseEnvelope =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(reply.request_id, 5);
    assert_eq!(reply.into_result().unwrap().entries.len(), 49);

    // An explicitly binary-advertising hello negotiates binary: the reply
    // names it and subsequent payloads are not JSON text.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    match send_hello_advertising(
        &mut stream,
        PROTOCOL_VERSION,
        Some(vec!["binary".into(), "json".into()]),
    ) {
        HelloReply::Accepted { codec, .. } => assert_eq!(codec.as_deref(), Some("binary")),
        HelloReply::Rejected(e) => panic!("binary hello rejected: {e}"),
    }
    let frame = WireCodec::Binary.encode_frame(&RequestEnvelope::new(9, request));
    stream.write_all(&frame).unwrap();
    let (kind, payload) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Response as u8);
    assert_ne!(payload[0], b'{', "binary payloads are not JSON text");
    let reply: ResponseEnvelope = WireCodec::Binary.decode_payload(&payload).unwrap();
    assert_eq!(reply.request_id, 9);
    assert_eq!(reply.into_result().unwrap().entries.len(), 49);

    // Server-side counters saw all four connections and both codecs.
    let server_stats = server.stats();
    assert_eq!(server_stats.connections_accepted, 4);
    assert_eq!(
        server_stats.binary_connections + server_stats.json_connections,
        4
    );
    assert!(
        server_stats.json_connections >= 2,
        "the forced-JSON and 1.1 peers negotiated JSON: {server_stats:?}"
    );
    server.shutdown();
}

#[test]
fn json_after_binary_negotiation_is_a_poisoning_codec_desync() {
    // A peer that negotiates binary and then sends JSON bytes has
    // desynchronized its codec: the server answers with a structured
    // Transport error (in the negotiated codec) and closes — never a hang.
    let server = start_dual_codec_server(caching_stack() as Arc<dyn MatrixService>);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match send_hello_advertising(&mut stream, PROTOCOL_VERSION, Some(vec!["binary".into()])) {
        HelloReply::Accepted { codec, .. } => assert_eq!(codec.as_deref(), Some("binary")),
        HelloReply::Rejected(e) => panic!("hello rejected: {e}"),
    }
    let envelope = RequestEnvelope::new(
        1,
        MatrixRequest {
            privacy_level: 1,
            delta: 0,
        },
    );
    let json = serde_json::to_string(&envelope).unwrap();
    stream
        .write_all(&encode_frame(FrameKind::Request, json.as_bytes()))
        .unwrap();
    let (kind, payload) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Response as u8);
    let reply: ResponseEnvelope = WireCodec::Binary.decode_payload(&payload).unwrap();
    assert_eq!(reply.request_id, 0, "no request id was decodable");
    let error = reply.into_result().unwrap_err();
    assert_eq!(error.kind, ServiceErrorKind::Transport);
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "server closed");
    assert!(server.stats().transport_errors >= 1);

    // A corrupted *binary* frame fails the same structured way.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match send_hello_advertising(&mut stream, PROTOCOL_VERSION, Some(vec!["binary".into()])) {
        HelloReply::Accepted { .. } => {}
        HelloReply::Rejected(e) => panic!("hello rejected: {e}"),
    }
    let mut frame = WireCodec::Binary.encode_frame(&envelope);
    frame[7] ^= 0xff; // first payload byte: the leading field tag
    stream.write_all(&frame).unwrap();
    let (kind, payload) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Response as u8);
    let reply: ResponseEnvelope = WireCodec::Binary.decode_payload(&payload).unwrap();
    let error = reply.into_result().unwrap_err();
    assert_eq!(error.kind, ServiceErrorKind::Transport);
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "server closed");
    server.shutdown();
}

#[test]
fn version_mismatch_is_refused_with_a_structured_error() {
    let server = start_server(caching_stack() as Arc<dyn MatrixService>);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reply = send_hello(
        &mut stream,
        ProtocolVersion {
            major: 99,
            minor: 0,
        },
    );
    match reply {
        HelloReply::Rejected(error) => {
            assert_eq!(error.kind, ServiceErrorKind::UnsupportedVersion);
            assert!(error.message.contains("99.0"), "{}", error.message);
        }
        HelloReply::Accepted { .. } => panic!("major 99 must be refused"),
    }
    // The server closes after rejecting.  A version mismatch is a
    // well-formed exchange, not a transport failure, so the error counter
    // stays at zero…
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    assert_eq!(server.stats().transport_errors, 0);

    // …whereas a peer whose FIRST frame is not a Hello at all is a
    // handshake-phase protocol failure and is counted.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(&encode_frame(FrameKind::Request, b"{}"))
        .unwrap();
    let (kind, payload) = read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::HelloReply as u8);
    match serde_json::from_str::<HelloReply>(std::str::from_utf8(&payload).unwrap()).unwrap() {
        HelloReply::Rejected(error) => assert_eq!(error.kind, ServiceErrorKind::Transport),
        HelloReply::Accepted { .. } => panic!("a Request before Hello must be refused"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    assert_eq!(server.stats().transport_errors, 1);

    // The high-level client surfaces the same failure as Err, and the server
    // keeps serving compatible clients afterwards.
    assert!(TcpTransport::connect(server.local_addr()).is_ok());
    server.shutdown();
}

#[test]
fn malformed_frames_return_transport_errors_and_close() {
    let server = start_server(caching_stack() as Arc<dyn MatrixService>);
    let addr = server.local_addr();

    let expect_transport_error = |mut stream: TcpStream| {
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let (kind, payload) = read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Response as u8);
        let reply: ResponseEnvelope =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert_eq!(reply.request_id, 0, "no request id was decodable");
        let error = reply.into_result().unwrap_err();
        assert_eq!(error.kind, ServiceErrorKind::Transport);
        // …and the connection is closed afterwards.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
        error
    };

    // Bad magic after a valid handshake.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(
        send_hello(&mut stream, PROTOCOL_VERSION),
        HelloReply::Accepted { .. }
    ));
    stream.write_all(b"XXXXXXXXXXXXXXXX").unwrap();
    let error = expect_transport_error(stream);
    assert!(error.message.contains("magic"), "{}", error.message);

    // Oversized length prefix: rejected from the header alone.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(
        send_hello(&mut stream, PROTOCOL_VERSION),
        HelloReply::Accepted { .. }
    ));
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&FRAME_MAGIC);
    oversized.push(FrameKind::Request as u8);
    oversized.extend_from_slice(&u32::MAX.to_be_bytes());
    stream.write_all(&oversized).unwrap();
    let error = expect_transport_error(stream);
    assert!(error.message.contains("exceeds"), "{}", error.message);

    // A well-framed Request whose payload is not a RequestEnvelope.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(
        send_hello(&mut stream, PROTOCOL_VERSION),
        HelloReply::Accepted { .. }
    ));
    stream
        .write_all(&encode_frame(
            FrameKind::Request,
            b"{\"not\":\"an envelope\"}",
        ))
        .unwrap();
    let error = expect_transport_error(stream);
    assert!(error.message.contains("malformed"), "{}", error.message);

    // After all that abuse the server still serves a healthy client.
    let transport = TcpTransport::connect(addr).unwrap();
    let forest = transport
        .privacy_forest(MatrixRequest {
            privacy_level: 1,
            delta: 0,
        })
        .unwrap();
    assert_eq!(forest.entries.len(), 49);
    server.shutdown();
}

#[test]
fn shutdown_closes_the_listener_and_open_connections() {
    // Regression: shutting the reactor down used to leak the listener and
    // connection sockets through an executor-internal reference cycle, so
    // connected clients hung on read until their own timeout instead of
    // seeing EOF.
    let server = start_server(caching_stack() as Arc<dyn MatrixService>);
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(
        send_hello(&mut stream, PROTOCOL_VERSION),
        HelloReply::Accepted { .. }
    ));
    server.shutdown();
    // The established connection sees EOF promptly (the 30 s read timeout
    // would fail this assertion if the socket leaked).
    let mut rest = Vec::new();
    assert_eq!(
        stream.read_to_end(&mut rest).unwrap(),
        0,
        "shutdown must close established connections"
    );
    // And the port no longer accepts a full exchange: either the connect is
    // refused outright or the socket is dead (no HelloReply ever comes).
    if let Ok(mut late) = TcpStream::connect(addr) {
        late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let hello = serde_json::to_string(&HelloFrame {
            version: PROTOCOL_VERSION,
            codecs: None,
            auth: None,
        })
        .unwrap();
        let _ = late.write_all(&encode_frame(FrameKind::Hello, hello.as_bytes()));
        let mut buf = [0u8; 1];
        assert!(
            !matches!(late.read(&mut buf), Ok(n) if n > 0),
            "a shut-down server must not answer new handshakes"
        );
    }
}

#[test]
fn overload_shed_is_retryable_and_does_not_poison_the_connection() {
    // Regression for the admission-control reply path: a shed used to be
    // indistinguishable from a protocol failure to the client.  The contract
    // is that an `Overloaded` reply echoes the real request id, flows through
    // `into_result()` as a retryable structured error, and leaves the
    // connection healthy — the *same* transport retries successfully.
    struct GatedService {
        inner: Arc<CachingService<ForestGenerator>>,
        state: Arc<(Mutex<GateState>, Condvar)>,
    }
    #[derive(Default)]
    struct GateState {
        entered: bool,
        open: bool,
    }
    impl MatrixService for GatedService {
        fn privacy_forest(
            &self,
            request: MatrixRequest,
        ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
            let (lock, cvar) = &*self.state;
            let mut state = lock.lock().unwrap();
            state.entered = true;
            cvar.notify_all();
            while !state.open {
                state = cvar.wait(state).unwrap();
            }
            drop(state);
            self.inner.privacy_forest(request)
        }
        fn tree(&self) -> Arc<LocationTree> {
            self.inner.tree()
        }
        fn prior(&self) -> Arc<PriorDistribution> {
            self.inner.prior()
        }
    }

    let state = Arc::new((Mutex::new(GateState::default()), Condvar::new()));
    let service = Arc::new(GatedService {
        inner: caching_stack(),
        state: state.clone(),
    });
    // One dispatch thread, backlog limit 1: a single in-flight request
    // saturates the server.
    let config = TransportConfig {
        dispatch_threads: 1,
        max_dispatch_backlog: 1,
        ..TransportConfig::default()
    };
    let server = TcpServer::bind("127.0.0.1:0", service as Arc<dyn MatrixService>, config)
        .expect("binding a loopback server");
    let addr = server.local_addr();
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };

    // Occupy the only dispatch thread with a request parked on the gate…
    let blocker = TcpTransport::connect(addr).unwrap();
    let blocked = std::thread::spawn(move || blocker.privacy_forest(request));
    {
        let (lock, cvar) = &*state;
        let mut s = lock.lock().unwrap();
        while !s.entered {
            let (next, timeout) = cvar.wait_timeout(s, Duration::from_secs(10)).unwrap();
            assert!(!timeout.timed_out(), "blocker never reached the service");
            s = next;
        }
    }

    // …so a second connection's request is shed: a structured, retryable
    // Overloaded error on an unpoisoned connection.
    let probe = TcpTransport::connect(addr).unwrap();
    let error = probe.privacy_forest(request).unwrap_err();
    assert_eq!(error.kind, ServiceErrorKind::Overloaded);
    assert!(error.is_retryable(), "{error:?}");
    assert!(error.message.contains("retry"), "{}", error.message);
    assert_eq!(probe.stats().poisoned_connections, 0);

    // Release the gate; the parked request completes normally.
    {
        let (lock, cvar) = &*state;
        lock.lock().unwrap().open = true;
        cvar.notify_all();
    }
    let forest = blocked.join().expect("blocker thread").unwrap();
    assert_eq!(forest.entries.len(), 49);

    // The shed connection retries with backoff — on the SAME transport — and
    // succeeds once the backlog drains (the counter decrements just after
    // the blocker's reply is queued, so a retry may race it briefly).
    let mut retries = 0usize;
    let forest = loop {
        match probe.privacy_forest(request) {
            Ok(forest) => break forest,
            Err(e) if e.is_retryable() && retries < 200 => {
                retries += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("retry failed with a non-retryable error: {e:?}"),
        }
    };
    assert_eq!(forest.entries.len(), 49);
    assert_eq!(probe.stats().poisoned_connections, 0);

    let stats = server.stats();
    assert_eq!(stats.requests_shed as usize, 1 + retries, "{stats:?}");
    assert_eq!(stats.requests_admitted, 2, "{stats:?}");
    server.shutdown();
}

#[test]
fn soak_connection_churn_with_aborts_and_malformed_peers() {
    // Thousands of short-lived connections — clean request/close cycles
    // interleaved with abrupt post-handshake disconnects and malformed-frame
    // peers — must leave the server with every accepted connection closed,
    // no poisoned-but-live state, exactly one counted transport error per
    // malformed peer, and a bounded read-buffer high-water mark.
    let caching = caching_stack();
    let server = start_server(caching.clone() as Arc<dyn MatrixService>);
    let addr = server.local_addr();
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };

    // Prime the cache so each cycle's request is a warm hit and the soak
    // exercises the connection lifecycle, not the solver.
    assert_eq!(
        TcpTransport::connect(addr)
            .unwrap()
            .privacy_forest(request)
            .unwrap()
            .entries
            .len(),
        49
    );

    let threads = 3usize;
    let iterations = 700usize;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut malformed = 0u64;
                for i in 0..iterations {
                    match (t + i) % 7 {
                        // Abrupt close right after the handshake: a clean EOF
                        // to the server, not a protocol failure.
                        5 => {
                            let mut stream = TcpStream::connect(addr).unwrap();
                            stream
                                .set_read_timeout(Some(Duration::from_secs(30)))
                                .unwrap();
                            assert!(matches!(
                                send_hello(&mut stream, PROTOCOL_VERSION),
                                HelloReply::Accepted { .. }
                            ));
                            drop(stream);
                        }
                        // Malformed peer: garbage instead of a frame gets a
                        // structured Transport error, then the close.
                        6 => {
                            let mut stream = TcpStream::connect(addr).unwrap();
                            stream
                                .set_read_timeout(Some(Duration::from_secs(30)))
                                .unwrap();
                            assert!(matches!(
                                send_hello(&mut stream, PROTOCOL_VERSION),
                                HelloReply::Accepted { .. }
                            ));
                            stream.write_all(b"XXXXXXXXXXXXXXXX").unwrap();
                            let (kind, payload) = read_frame(&mut stream).unwrap();
                            assert_eq!(kind, FrameKind::Response as u8);
                            let reply: ResponseEnvelope =
                                serde_json::from_str(std::str::from_utf8(&payload).unwrap())
                                    .unwrap();
                            let error = reply.into_result().unwrap_err();
                            assert_eq!(error.kind, ServiceErrorKind::Transport);
                            malformed += 1;
                        }
                        // Clean cycle: connect, one request, disconnect.
                        _ => {
                            let transport = TcpTransport::connect(addr).unwrap();
                            let forest = transport.privacy_forest(request).unwrap();
                            assert_eq!(forest.entries.len(), 49);
                            assert_eq!(transport.stats().poisoned_connections, 0);
                        }
                    }
                }
                malformed
            })
        })
        .collect();
    let malformed: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("soak thread"))
        .sum();

    // EOF processing is asynchronous to the client's drop; poll until the
    // close counter catches up with the accept counter.
    let expected = (threads * iterations + 1) as u64; // +1 for the priming connection
    let deadline = Instant::now() + Duration::from_secs(20);
    let stats = loop {
        let stats = server.stats();
        if stats.connections_accepted >= expected
            && stats.connections_closed == stats.connections_accepted
        {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "connections never drained: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(stats.connections_accepted, expected, "{stats:?}");
    assert_eq!(stats.connections_closed, expected, "{stats:?}");
    assert_eq!(stats.transport_errors, malformed, "{stats:?}");
    assert_eq!(stats.poisoned_connections, 0, "{stats:?}");
    // The inbound memory bound holds across the whole soak: no connection's
    // read buffer ever exceeded one maximal frame plus the refill slack.
    let config = TransportConfig::default();
    let bound = (config.max_inbound_frame + FRAME_HEADER_LEN + 4096) as u64;
    assert!(
        stats.read_buffer_high_water > 0 && stats.read_buffer_high_water <= bound,
        "read-buffer high water {} outside (0, {bound}]",
        stats.read_buffer_high_water
    );
    server.shutdown();
}

#[test]
fn mute_connections_are_reaped_at_the_read_idle_deadline() {
    // Regression for the read-idle reaper: a connected-but-mute client must
    // be closed with a structured goodbye once the deadline passes, while an
    // active client on the same server re-arms its deadline with every frame
    // and keeps working across several idle windows.
    let caching = caching_stack();
    let config = TransportConfig {
        read_idle_timeout: Some(Duration::from_millis(400)),
        ..TransportConfig::default()
    };
    let server = TcpServer::bind("127.0.0.1:0", caching as Arc<dyn MatrixService>, config)
        .expect("binding a loopback server");
    let addr = server.local_addr();
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };

    // The mute peer handshakes, then goes silent.
    let mut mute = TcpStream::connect(addr).unwrap();
    mute.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(
        send_hello(&mut mute, PROTOCOL_VERSION),
        HelloReply::Accepted { .. }
    ));

    // Meanwhile the active client spends longer than one idle window making
    // requests: each inbound frame re-arms its deadline, so it is never
    // reaped.
    let active = TcpTransport::connect(addr).unwrap();
    for _ in 0..3 {
        active
            .privacy_forest(request)
            .expect("an active connection outlives many idle windows");
        std::thread::sleep(Duration::from_millis(250));
    }

    // By now the mute connection crossed its deadline: a structured Transport
    // error naming the policy, then EOF — not a silent drop, never a hang.
    let (kind, payload) = read_frame(&mut mute).unwrap();
    assert_eq!(kind, FrameKind::Response as u8);
    let reply: ResponseEnvelope =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(reply.request_id, 0, "no request was in flight");
    let error = reply.into_result().unwrap_err();
    assert_eq!(error.kind, ServiceErrorKind::Transport);
    assert!(error.message.contains("read-idle"), "{}", error.message);
    let mut rest = Vec::new();
    assert_eq!(rest.len(), mute.read_to_end(&mut rest).unwrap(), "reaped");
    assert_eq!(rest.len(), 0, "the goodbye is the last frame");

    // The reap is counted, and the active client still serves.
    assert!(server.stats().transport_errors >= 1);
    active
        .privacy_forest(request)
        .expect("the reaper only touches idle connections");
    server.shutdown();
}

#[test]
fn truncated_frame_is_bounded_by_the_handshake_deadline() {
    // A peer that sends half a frame and goes silent must not pin a
    // connection forever: the deadline closes it.
    let caching = caching_stack();
    let config = TransportConfig {
        handshake_timeout: Duration::from_millis(300),
        ..TransportConfig::default()
    };
    let server = TcpServer::bind("127.0.0.1:0", caching as Arc<dyn MatrixService>, config)
        .expect("binding a loopback server");
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Half a hello: magic + kind + a length promising bytes that never come.
    stream.write_all(&FRAME_MAGIC).unwrap();
    stream.write_all(&[FrameKind::Hello as u8]).unwrap();
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    let mut rest = Vec::new();
    assert_eq!(
        stream.read_to_end(&mut rest).unwrap(),
        0,
        "server must close the half-open connection at the deadline"
    );
    server.shutdown();
}
