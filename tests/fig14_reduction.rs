//! Fig. 14 as an asserted integration test: when the user raises the precision
//! level, aggregating the already-delivered leaf matrix (Algorithm 2) must be
//! far cheaper than recalculating a robust matrix at the coarser level, while
//! preserving row-stochasticity and the ε-Geo-Ind guarantee (Proposition 4.6).

use corgi::core::{
    generate_robust_matrix, geoind, precision_reduction, LocationTree, ObfuscationProblem,
    RobustConfig, SolverKind,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::time::Instant;

#[test]
fn precision_reduction_is_much_faster_than_recalculation() {
    let tree = LocationTree::new(HexGrid::new(HexGridConfig::san_francisco()).unwrap());
    let subtree = tree.privacy_forest(2).unwrap()[0].clone();
    let k = subtree.leaf_count();
    assert_eq!(k, 49);
    let prior: Vec<f64> = (0..k).map(|i| 1.0 + (i % 7) as f64).collect();
    let targets: Vec<usize> = (0..k).step_by(3).collect();
    let epsilon = 15.0;
    let problem =
        ObfuscationProblem::new(&tree, &subtree, &prior, &targets, epsilon, true).unwrap();
    let config = RobustConfig {
        delta: 1,
        iterations: 3,
        solver: SolverKind::Auto,
    };

    // The leaf-level robust matrix the user already received.
    let leaf_matrix = generate_robust_matrix(&problem, &config).unwrap().matrix;

    // Recalculation: what the server would redo if no reduction existed.
    let start = Instant::now();
    let recalculated = generate_robust_matrix(&problem, &config).unwrap().matrix;
    let recalc_time = start.elapsed();

    // Precision reduction of the delivered matrix to level 1 (Algorithm 2).
    let start = Instant::now();
    let reduced = precision_reduction(&leaf_matrix, &tree, 1, &prior).unwrap();
    let reduce_time = start.elapsed();

    // The paper's Fig. 14 ordering: reduction is orders of magnitude faster at
    // every size and every δ; a 5× margin keeps the assertion robust to noise.
    assert!(
        recalc_time > reduce_time * 5,
        "recalculation ({recalc_time:?}) must dwarf precision reduction ({reduce_time:?})"
    );

    // Both paths produce valid coarse-or-leaf matrices: the reduced matrix is
    // one row/column per level-1 node and keeps the guarantees it started with.
    assert_eq!(reduced.size(), 7);
    assert!(reduced.cells().iter().all(|c| c.level() == 1));
    reduced.check_stochastic(1e-9).unwrap();
    let distances = tree.distance_matrix(reduced.cells());
    let report = geoind::check_all_pairs(&reduced, &distances, epsilon, 1e-6);
    assert!(
        report.is_satisfied(),
        "Proposition 4.6: reduction preserves ε-Geo-Ind ({} / {} violated)",
        report.violated,
        report.total_constraints
    );
    // The recalculated leaf matrix stays at leaf granularity — the ordering
    // above is the whole reason Algorithm 2 exists.
    assert_eq!(recalculated.size(), k);
}
