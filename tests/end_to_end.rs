//! Cross-crate integration tests: the full CORGI pipeline from synthetic
//! check-ins to an obfuscated report, and the paper's robustness claim checked
//! end to end through the client/server framework.

use corgi::core::{generate_nonrobust_matrix, generate_robust_matrix, RobustConfig};
use corgi::core::{geoind, prune_matrix, LocationTree, Policy, Predicate, SolverKind};
use corgi::datagen::{
    GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution,
};
use corgi::framework::{
    messages::MatrixRequest, CachingService, CorgiClient, ForestGenerator, InstrumentedService,
    MatrixService, MetadataAttributeProvider, ServerConfig, TcpServer, TcpTransport,
    TransportConfig, WarmRequest,
};
use corgi::geo::LatLng;
use corgi::hexgrid::{HexGrid, HexGridConfig};
use rand::prelude::*;
use std::sync::Arc;

fn experiment_grid() -> HexGrid {
    HexGrid::new(HexGridConfig {
        center: LatLng::new(37.7749, -122.4194).unwrap(),
        height: 3,
        leaf_spacing_km: 0.12,
    })
    .unwrap()
}

#[test]
fn full_pipeline_produces_in_range_reports() {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    // The full production stack: generator → bounded cache → counters, behind
    // the service trait object.
    let instrumented = Arc::new(InstrumentedService::new(CachingService::with_defaults(
        ForestGenerator::new(
            LocationTree::new(grid.clone()),
            prior,
            ServerConfig::builder()
                .robust_iterations(2)
                .targets_per_subtree(5)
                .build(),
        ),
    )));
    let service: Arc<dyn MatrixService> = instrumented.clone();
    let mut rng = StdRng::seed_from_u64(9);
    let mut reports = 0usize;
    for &user in metadata.users_with_home().iter().take(3) {
        let home = metadata.home_of(user).unwrap();
        let real = grid.cell_center(&home);
        let policy = Policy::new(1, 0, vec![Predicate::is_false("outlier")]).unwrap();
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        let client = CorgiClient::new(Arc::clone(&service), policy, provider).unwrap();
        let outcome = client
            .generate_obfuscated_location(&real, &mut rng)
            .unwrap();
        // The report is a cell of the grid, at the requested precision, inside the
        // user's privacy-level subtree.
        let tree = service.tree();
        let subtree = tree.subtree_containing(&outcome.real_leaf, 1).unwrap();
        assert!(subtree.contains(&outcome.report.reported_cell));
        assert_eq!(outcome.report.precision_level, 0);
        outcome.customized_matrix.check_stochastic(1e-6).unwrap();
        reports += 1;
    }
    assert_eq!(reports, 3);
    // The serving layers observed the traffic: every request was counted and
    // the generated forests are resident in the cache.
    let stats = instrumented.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.errors, 0);
    assert!(instrumented.inner().cache_stats().entries >= 1);
}

#[test]
fn full_pipeline_over_the_tcp_transport() {
    // The same trusted-device flow, but the serving stack sits behind the
    // event-driven TCP server with a warmed cache and the client side is a
    // TcpTransport that learned the tree and prior from the handshake.
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let caching = Arc::new(CachingService::with_defaults(ForestGenerator::new(
        LocationTree::new(grid.clone()),
        prior,
        ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .build(),
    )));
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&caching) as Arc<dyn MatrixService>,
        TransportConfig::default(),
    )
    .unwrap();
    let transport = Arc::new(TcpTransport::connect(server.local_addr()).unwrap());

    // Warm the grid the clients below will hit, over the wire.
    let report = transport.warm(&WarmRequest::level(1, 3)).unwrap();
    assert!(report.is_complete(), "failures: {:?}", report.failures);
    let warmed_misses = caching.cache_stats().unwrap().misses;

    let service: Arc<dyn MatrixService> = transport;
    let mut rng = StdRng::seed_from_u64(9);
    for &user in metadata.users_with_home().iter().take(3) {
        let home = metadata.home_of(user).unwrap();
        let real = grid.cell_center(&home);
        let policy = Policy::new(1, 0, vec![Predicate::is_false("outlier")]).unwrap();
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        let client = CorgiClient::new(Arc::clone(&service), policy, provider).unwrap();
        let outcome = client
            .generate_obfuscated_location(&real, &mut rng)
            .unwrap();
        let tree = service.tree();
        let subtree = tree.subtree_containing(&outcome.real_leaf, 1).unwrap();
        assert!(subtree.contains(&outcome.report.reported_cell));
        outcome.customized_matrix.check_stochastic(1e-6).unwrap();
    }
    // The warmed keys absorbed the client traffic: no further generations
    // (clients whose δ fell inside the warmed grid were pure hits).
    let stats = caching.cache_stats().unwrap();
    assert!(
        stats.misses <= warmed_misses + 1,
        "client traffic should be cache-hit dominated after warming: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn server_learns_only_privacy_level_and_delta() {
    // The request type sent to the server carries exactly two fields; the exact
    // pruned cells and the user's subtree stay on the device.
    let request = MatrixRequest {
        privacy_level: 2,
        delta: 3,
    };
    let as_json = serde_json::to_value(request).unwrap();
    assert_eq!(as_json.as_object().unwrap().len(), 2);
}

#[test]
fn robust_matrix_beats_nonrobust_after_pruning_end_to_end() {
    // The paper's headline, checked through the whole stack at a reduced size:
    // generate both matrices over a 49-cell range from synthetic-data priors,
    // prune random cells, compare Geo-Ind violation rates.
    let grid = experiment_grid();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let tree = LocationTree::new(grid.clone());
    let subtree = tree.privacy_forest(2).unwrap()[0].clone();
    let restricted = prior
        .restricted_to(&grid, subtree.leaves())
        .unwrap_or_else(|| vec![1.0 / 49.0; 49]);
    let targets: Vec<usize> = (0..49).step_by(3).collect();
    let epsilon = 15.0;
    let problem =
        corgi::core::ObfuscationProblem::new(&tree, &subtree, &restricted, &targets, epsilon, true)
            .unwrap();

    let delta = 3;
    let nonrobust = generate_nonrobust_matrix(&problem, SolverKind::Auto).unwrap();
    let robust = generate_robust_matrix(
        &problem,
        &RobustConfig {
            delta,
            iterations: 4,
            solver: SolverKind::Auto,
        },
    )
    .unwrap()
    .matrix;

    let mut rng = StdRng::seed_from_u64(123);
    let trials = 25;
    let mut pct = [0.0f64; 2];
    for _ in 0..trials {
        let mut cells = problem.cells().to_vec();
        cells.shuffle(&mut rng);
        let prune: Vec<_> = cells[..delta].to_vec();
        let survivors: Vec<usize> = problem
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| !prune.contains(c))
            .map(|(i, _)| i)
            .collect();
        let distances: Vec<Vec<f64>> = survivors
            .iter()
            .map(|&i| {
                survivors
                    .iter()
                    .map(|&j| problem.distances()[i][j])
                    .collect()
            })
            .collect();
        for (slot, matrix) in [&nonrobust, &robust].into_iter().enumerate() {
            let pruned = prune_matrix(matrix, &prune).unwrap();
            let report = geoind::check_all_pairs(&pruned, &distances, epsilon, 1e-7);
            pct[slot] += report.violation_percentage() / trials as f64;
        }
    }
    assert!(
        pct[1] < pct[0],
        "CORGI ({:.2}%) must violate fewer constraints than non-robust ({:.2}%)",
        pct[1],
        pct[0]
    );
    assert!(
        pct[1] < 5.0,
        "CORGI violations should be small, got {:.2}%",
        pct[1]
    );
}

#[test]
fn planar_laplace_baseline_integrates_with_the_grid() {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let mechanism = corgi::core::laplace::PlanarLaplace::new(10.0);
    let real = grid.cell_center(&grid.leaves()[150]);
    let mut rng = StdRng::seed_from_u64(4);
    let mut total = 0.0;
    let n = 300;
    for _ in 0..n {
        let cell = mechanism.sample_cell(&grid, &real, &mut rng);
        total += corgi::geo::haversine_km(&real, &grid.cell_center(&cell));
    }
    let mean_error = total / n as f64;
    // ε = 10/km implies a mean radial error of 2/ε = 0.2 km; cell snapping adds
    // at most about half a cell.
    assert!(
        mean_error < 0.8,
        "mean displacement {mean_error} km is implausibly large"
    );
}
