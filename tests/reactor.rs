//! Reactor-backend integration tests: the epoll readiness backend answers a
//! request that arrives mid-idle without waiting out the old 500 µs poll
//! tick, and the multi-reactor sharding spreads accepted connections across
//! shards with per-shard counters that sum to the server-wide view.

use corgi::core::LocationTree;
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::MatrixRequest;
use corgi::framework::{
    CachingService, ForestGenerator, MatrixService, ReactorBackend, ServerConfig, TcpServer,
    TcpTransport, TransportConfig,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn caching_stack() -> Arc<CachingService<ForestGenerator>> {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    Arc::new(CachingService::with_defaults(ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(1)
            .targets_per_subtree(3)
            .worker_threads(2)
            .build(),
    )))
}

/// Median idle-arrival round-trip latency against a server on `backend`.
///
/// Each sampled request is preceded by a few milliseconds of idle time, so
/// the reactor has drained its ready queue and is blocking when the frame
/// lands — exactly the case where the tick backend pays up to a full
/// `io_poll_interval` before it even notices the socket.
fn median_idle_latency(
    backend: ReactorBackend,
    service: Arc<dyn MatrixService>,
    rounds: usize,
) -> Duration {
    let config = TransportConfig {
        reactor_backend: backend,
        reactor_shards: 1,
        ..TransportConfig::default()
    };
    let server = TcpServer::bind("127.0.0.1:0", service, config).expect("binding loopback server");
    assert_eq!(server.backend(), backend.resolve());
    let transport = TcpTransport::connect(server.local_addr()).unwrap();
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    // Populate the cache (and the connection's codec state) before timing:
    // the sampled round trips must be pure serving, not LP solving.
    transport.privacy_forest(request).unwrap();

    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        std::thread::sleep(Duration::from_millis(3));
        let start = Instant::now();
        transport.privacy_forest(request).unwrap();
        samples.push(start.elapsed());
    }
    server.shutdown();
    samples.sort();
    samples[samples.len() / 2]
}

#[test]
fn mid_idle_request_beats_the_old_tick_window_on_epoll() {
    if ReactorBackend::Epoll.resolve() != ReactorBackend::Epoll {
        eprintln!("epoll unavailable on this host; skipping readiness-latency regression test");
        return;
    }
    let service = caching_stack() as Arc<dyn MatrixService>;
    // Same process, same service (so both backends serve the identical warm
    // cache), interleaving-independent: tick first, then epoll.
    let tick = median_idle_latency(ReactorBackend::Tick, Arc::clone(&service), 40);
    let epoll = median_idle_latency(ReactorBackend::Epoll, service, 40);

    // The old backend discovers an idle-arrival frame only on its next tick
    // (default interval 500 µs).  The readiness backend must answer well
    // inside that window — and never slower than the tick it replaces.
    assert!(
        epoll < Duration::from_micros(450),
        "epoll median idle-arrival latency {epoll:?} is not under the 500 µs tick window"
    );
    assert!(
        epoll <= tick,
        "epoll median {epoll:?} must not regress past the tick backend's {tick:?}"
    );
}

#[test]
fn shards_split_accepted_connections_and_stats_aggregate() {
    let config = TransportConfig {
        reactor_shards: 3,
        ..TransportConfig::default()
    };
    let server = TcpServer::bind(
        "127.0.0.1:0",
        caching_stack() as Arc<dyn MatrixService>,
        config,
    )
    .expect("binding sharded loopback server");
    assert_eq!(server.shard_count(), 3);

    // Nine sequential connections, one request each: the accept loop
    // round-robins, so every shard must own exactly three of them.
    for delta in 0..9usize {
        let transport = TcpTransport::connect(server.local_addr()).unwrap();
        let forest = transport
            .privacy_forest(MatrixRequest {
                privacy_level: 1,
                delta: delta % 3,
            })
            .unwrap();
        assert_eq!(forest.entries.len(), 49);
    }

    let shards = server.shard_stats();
    assert_eq!(shards.len(), 3);
    for (index, shard) in shards.iter().enumerate() {
        assert_eq!(
            shard.connections_accepted, 3,
            "shard {index} must account for its third of the connections: {shard:?}"
        );
        // Hello + request at minimum — the connection really ran on this
        // shard's reactor, it wasn't just counted at accept time.
        assert!(
            shard.frames_in >= 2,
            "shard {index} never decoded its connections' frames: {shard:?}"
        );
    }

    // The server-wide snapshot is exactly the fold of the per-shard ones.
    let mut folded = shards[0];
    for shard in &shards[1..] {
        folded.merge(shard);
    }
    assert_eq!(server.stats(), folded);
    server.shutdown();
}
