//! Cluster integration tests: the replication contract (a cold miss on one
//! shard becomes a warm hit on its peers with zero LP solves of their own,
//! observed purely over the wire), bounded drop-oldest push queues under peer
//! stall, HMAC frame authentication (handshake rejection and post-handshake
//! tamper detection), and router failover when a shard dies mid-run.

use corgi::core::LocationTree;
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::{MatrixRequest, RequestEnvelope, ResponseEnvelope};
use corgi::framework::transport::{encode_frame, FrameKind, HelloFrame, HelloReply};
use corgi::framework::{
    rendezvous_rank, CachingService, ClientConfig, ClusterKey, ForestGenerator, MatrixService,
    ReplicatingService, ReplicationConfig, Replicator, RouterConfig, ServerConfig, ServiceError,
    ServiceErrorKind, ShardRouter, TcpServer, TcpTransport, TransportConfig, WireCodec,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FRAME_HEADER_LEN: usize = corgi::framework::transport::FRAME_HEADER_LEN;

/// One booted shard: its server plus the handles the tests assert against.
struct Shard {
    server: TcpServer,
    replicator: Arc<Replicator>,
}

/// Boot an `n`-shard cluster wired into a full replication mesh.  Every shard
/// runs `CachingService(ReplicatingService(ForestGenerator))`, so exactly the
/// cold-miss single-flight leader offers its solve to the peers.
fn start_cluster(n: usize, key: Option<ClusterKey>) -> Vec<Shard> {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let config = ServerConfig::builder()
        .robust_iterations(1)
        .targets_per_subtree(3)
        .worker_threads(2)
        .build();
    let shards: Vec<Shard> = (0..n)
        .map(|_| {
            let replicator = Replicator::new(ReplicationConfig {
                cluster_key: key.clone(),
                // Deterministic negotiation regardless of CORGI_WIRE_CODEC.
                codecs: vec![WireCodec::Binary, WireCodec::Json],
                ..ReplicationConfig::default()
            });
            let service = Arc::new(CachingService::with_defaults(ReplicatingService::new(
                ForestGenerator::new(LocationTree::new(grid.clone()), prior.clone(), config),
                Arc::clone(&replicator),
            )));
            let server = TcpServer::bind(
                "127.0.0.1:0",
                service as Arc<dyn MatrixService>,
                TransportConfig {
                    cluster_key: key.clone(),
                    replication: Some(Arc::clone(&replicator)),
                    // Payload pushes carry a whole encoded forest.
                    max_inbound_frame: 8 * 1024 * 1024,
                    codecs: vec![WireCodec::Binary, WireCodec::Json],
                    ..TransportConfig::default()
                },
            )
            .expect("binding a cluster shard");
            Shard { server, replicator }
        })
        .collect();
    // Ports are only known after bind; mesh the peers up now.
    let endpoints: Vec<String> = shards
        .iter()
        .map(|s| s.server.local_addr().to_string())
        .collect();
    for (index, shard) in shards.iter().enumerate() {
        for (peer, endpoint) in endpoints.iter().enumerate() {
            if peer != index {
                shard.replicator.add_peer(endpoint.clone());
            }
        }
    }
    shards
}

fn endpoints_of(shards: &[Shard]) -> Vec<String> {
    shards
        .iter()
        .map(|s| s.server.local_addr().to_string())
        .collect()
}

fn keyed_client(key: Option<ClusterKey>, codec: WireCodec) -> ClientConfig {
    ClientConfig {
        cluster_key: key,
        codecs: vec![codec],
        read_timeout: Some(Duration::from_secs(30)),
        ..ClientConfig::default()
    }
}

/// The tentpole contract, parameterized by payload codec: a cold miss routed
/// to its owner shard must become a warm hit on every peer — confirmed over
/// the wire via `Stats` frames — without the peers ever running an LP solve.
fn replication_contract(codec: WireCodec) {
    let key = ClusterKey::from_secret(b"cluster-test-key");
    let shards = start_cluster(3, Some(key.clone()));
    let endpoints = endpoints_of(&shards);
    let router = ShardRouter::connect(
        endpoints.iter().cloned(),
        RouterConfig {
            client: keyed_client(Some(key.clone()), codec),
            ..RouterConfig::default()
        },
    )
    .expect("router connects to the keyed cluster");

    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let ranking = rendezvous_rank(&endpoints, request.privacy_level, request.delta);
    router.privacy_forest(request).expect("cold miss solves");

    // One authenticated stats connection per shard; every assertion below
    // reads the server's counters over the wire, not in-process.
    let stats: Vec<TcpTransport> = shards
        .iter()
        .map(|s| {
            TcpTransport::connect_with(
                s.server.local_addr(),
                keyed_client(Some(key.clone()), codec),
            )
            .expect("stats connection")
        })
        .collect();

    // The push is asynchronous: wait until the key is resident everywhere.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resident = stats
            .iter()
            .filter(|conn| {
                conn.server_stats()
                    .expect("stats frame")
                    .cache
                    .expect("every shard stacks a cache")
                    .entries
                    >= 1
            })
            .count();
        if resident == shards.len() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication push did not land within 10s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    for (index, conn) in stats.iter().enumerate() {
        let report = conn.server_stats().expect("stats frame");
        let cache = report.cache.expect("cache stats present");
        let cluster = report.cluster.expect("cluster stats present");
        if index == ranking[0] {
            assert_eq!(cache.misses, 1, "the owner solved the key exactly once");
            let sent: u64 = cluster.peers.iter().map(|p| p.pushes_sent).sum();
            assert!(sent >= 2, "the owner pushed to both peers: {cluster:?}");
        } else {
            // The replication contract: the key is resident with zero LP
            // solves on this shard.
            assert_eq!(cache.misses, 0, "peers never solve the replicated key");
            assert!(cluster.pushes_received >= 1, "{cluster:?}");
        }
        assert!(report.transport.frames_in > 0, "stats travelled the wire");
    }

    // Serving the key from a peer is a pure cache hit.
    let peer = ranking[1];
    let before = stats[peer].server_stats().unwrap().cache.unwrap();
    stats[peer]
        .privacy_forest(request)
        .expect("peer serves the replicated key");
    let after = stats[peer].server_stats().unwrap().cache.unwrap();
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, 0, "still no LP solve on the peer");

    for shard in shards {
        shard.server.shutdown();
    }
}

#[test]
fn replication_makes_peer_hits_without_peer_solves_binary() {
    replication_contract(WireCodec::Binary);
}

#[test]
fn replication_makes_peer_hits_without_peer_solves_json() {
    replication_contract(WireCodec::Json);
}

#[test]
fn push_queue_is_bounded_and_drops_oldest_when_a_peer_stalls() {
    // A peer that is down must not let the queue grow: the bound evicts the
    // oldest push and counts the drop.
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let replicator = Replicator::new(ReplicationConfig {
        queue_depth: 3,
        ..ReplicationConfig::default()
    });
    // A port that was live once and is now closed: connects fail fast, so the
    // flusher keeps backing off while offers keep arriving.
    let dead = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    replicator.add_peer(dead.to_string());
    let service = Arc::new(CachingService::with_defaults(ReplicatingService::new(
        ForestGenerator::new(
            LocationTree::new(grid),
            prior,
            ServerConfig::builder()
                .robust_iterations(1)
                .targets_per_subtree(3)
                .worker_threads(2)
                .build(),
        ),
        Arc::clone(&replicator),
    )));
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn MatrixService>,
        TransportConfig {
            replication: Some(Arc::clone(&replicator)),
            ..TransportConfig::default()
        },
    )
    .unwrap();

    // Eight distinct cold misses → eight offers onto a depth-3 queue.
    for delta in 0..8usize {
        service
            .privacy_forest(MatrixRequest {
                privacy_level: 1,
                delta,
            })
            .unwrap();
    }
    let peer = &server.cluster_stats().peers[0];
    assert!(
        peer.queue_depth <= 3,
        "queue must stay at its bound: {peer:?}"
    );
    assert!(
        peer.pushes_dropped >= 5,
        "overflow evicts the oldest pushes: {peer:?}"
    );
    assert_eq!(
        peer.pushes_sent, 0,
        "nothing reached the dead peer: {peer:?}"
    );
    // The drop counter must also be visible to an operator over the wire —
    // the `Stats` frame carries the same per-peer row the in-process
    // accessor does.
    let stats_conn =
        TcpTransport::connect_with(server.local_addr(), keyed_client(None, WireCodec::Json))
            .unwrap();
    let wire = stats_conn.server_stats().unwrap().cluster.unwrap();
    let wire_peer = &wire.peers[0];
    assert!(
        wire_peer.pushes_dropped >= 5,
        "drops travel the Stats frame: {wire_peer:?}"
    );
    assert_eq!(wire_peer.pushes_sent, 0, "{wire_peer:?}");
    server.shutdown();
}

#[test]
fn key_rotation_window_accepts_either_generation() {
    // Mid-rotation, half the fleet signs with the new key while the other
    // half still signs with the old one.  Both directions must verify:
    // a server on {new, prev old} accepts a client still on {old, prev new},
    // and vice versa, because each side signs with its primary and verifies
    // against primary-then-previous.
    let new_server = ClusterKey::from_secret(b"rotation-new").with_previous(b"rotation-old");
    let old_client = ClusterKey::from_secret(b"rotation-old").with_previous(b"rotation-new");
    let shards = start_cluster(1, Some(new_server.clone()));
    let addr = shards[0].server.local_addr();

    // Old-primary client against new-primary server: full handshake plus a
    // sealed request/response round trip.
    let conn = TcpTransport::connect_with(addr, keyed_client(Some(old_client), WireCodec::Json))
        .expect("rotation window accepts the previous key");
    conn.privacy_forest(MatrixRequest {
        privacy_level: 1,
        delta: 0,
    })
    .expect("sealed request verifies under the rotation window");

    // A client already on the new primary keeps working throughout.
    TcpTransport::connect_with(addr, keyed_client(Some(new_server), WireCodec::Json))
        .expect("the new primary still handshakes");

    // A key from outside the window is still rejected.
    match TcpTransport::connect_with(
        addr,
        keyed_client(
            Some(ClusterKey::from_secret(b"rotation-unrelated")),
            WireCodec::Json,
        ),
    ) {
        Ok(_) => panic!("an unrelated key must not handshake"),
        Err(error) => assert_eq!(error.kind, ServiceErrorKind::Unauthenticated, "{error}"),
    }

    for shard in shards {
        shard.server.shutdown();
    }
}

/// Read one raw frame (header + body) from the stream.  The body includes
/// the MAC trailer when the connection is keyed.
fn read_raw_frame(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_be_bytes([header[3], header[4], header[5], header[6]]) as usize;
    let mut frame = header.to_vec();
    frame.resize(FRAME_HEADER_LEN + len, 0);
    stream.read_exact(&mut frame[FRAME_HEADER_LEN..]).unwrap();
    (header[2], frame)
}

#[test]
fn tampered_frames_are_rejected_with_a_structured_error() {
    let key = ClusterKey::from_secret(b"tamper-test-key");
    let shards = start_cluster(1, Some(key.clone()));
    let addr = shards[0].server.local_addr();

    // Handshake by hand: a plain-JSON hello announcing hmac-sha256 (hellos
    // are never MAC'd — the reply proves the server holds the key).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = serde_json::to_string(&HelloFrame {
        version: corgi::framework::messages::PROTOCOL_VERSION,
        codecs: None, // JSON payloads
        auth: Some(corgi::framework::auth::AUTH_SCHEME.to_string()),
    })
    .unwrap();
    stream
        .write_all(&encode_frame(FrameKind::Hello, hello.as_bytes()))
        .unwrap();
    let (kind, reply_frame) = read_raw_frame(&mut stream);
    assert_eq!(kind, FrameKind::HelloReply as u8);
    // The accepted reply is MAC'd: opening it with the key must succeed.
    let payload = key
        .open(&reply_frame)
        .expect("the keyed server authenticates its hello reply");
    let reply: HelloReply = serde_json::from_str(std::str::from_utf8(payload).unwrap()).unwrap();
    match reply {
        HelloReply::Accepted { auth, .. } => {
            assert_eq!(auth.as_deref(), Some(corgi::framework::auth::AUTH_SCHEME));
        }
        HelloReply::Rejected(error) => panic!("hello rejected: {error}"),
    }

    // A correctly sealed request round-trips...
    let envelope = RequestEnvelope::new(
        1,
        MatrixRequest {
            privacy_level: 1,
            delta: 0,
        },
    );
    let frame = key.seal(encode_frame(
        FrameKind::Request,
        serde_json::to_string(&envelope).unwrap().as_bytes(),
    ));
    stream.write_all(&frame).unwrap();
    let (kind, reply_frame) = read_raw_frame(&mut stream);
    assert_eq!(kind, FrameKind::Response as u8);
    let payload = key.open(&reply_frame).expect("sealed response");
    let reply: ResponseEnvelope =
        serde_json::from_str(std::str::from_utf8(payload).unwrap()).unwrap();
    assert_eq!(reply.request_id, 1);
    reply.into_result().expect("valid sealed request succeeds");

    // ...but flipping one payload byte after sealing is detected, answered
    // with a structured Unauthenticated error and the connection dropped.
    let envelope = RequestEnvelope::new(
        2,
        MatrixRequest {
            privacy_level: 1,
            delta: 1,
        },
    );
    let mut frame = key.seal(encode_frame(
        FrameKind::Request,
        serde_json::to_string(&envelope).unwrap().as_bytes(),
    ));
    frame[FRAME_HEADER_LEN] ^= 0x01;
    stream.write_all(&frame).unwrap();
    let (kind, reply_frame) = read_raw_frame(&mut stream);
    assert_eq!(kind, FrameKind::Response as u8);
    let payload = key
        .open(&reply_frame)
        .expect("the rejection itself is authenticated");
    let reply: ResponseEnvelope =
        serde_json::from_str(std::str::from_utf8(payload).unwrap()).unwrap();
    let error = reply.into_result().expect_err("tampered frame is rejected");
    assert_eq!(error.kind, ServiceErrorKind::Unauthenticated);
    assert!(!error.is_retryable(), "auth failures are terminal");

    // The server counted the rejection (visible over the wire too).
    let stats_conn =
        TcpTransport::connect_with(addr, keyed_client(Some(key.clone()), WireCodec::Json)).unwrap();
    let cluster = stats_conn.server_stats().unwrap().cluster.unwrap();
    assert!(cluster.auth_rejections >= 1, "{cluster:?}");

    for shard in shards {
        shard.server.shutdown();
    }
}

#[test]
fn keyed_cluster_rejects_unkeyed_and_wrong_key_clients() {
    let key = ClusterKey::from_secret(b"handshake-test-key");
    let shards = start_cluster(1, Some(key.clone()));
    let addr = shards[0].server.local_addr();

    let expect_unauthenticated = |result: Result<TcpTransport, ServiceError>| match result {
        Ok(_) => panic!("handshake must fail"),
        Err(error) => assert_eq!(error.kind, ServiceErrorKind::Unauthenticated, "{error}"),
    };
    // No key: the server rejects the hello outright.
    expect_unauthenticated(TcpTransport::connect_with(
        addr,
        keyed_client(None, WireCodec::Json),
    ));
    // Wrong key: the server's (correctly) sealed reply fails to open on the
    // client, which refuses to desync.
    expect_unauthenticated(TcpTransport::connect_with(
        addr,
        keyed_client(
            Some(ClusterKey::from_secret(b"not-the-same-key")),
            WireCodec::Json,
        ),
    ));
    assert!(shards[0].server.cluster_stats().auth_rejections >= 1);
    // And the right key connects fine.
    TcpTransport::connect_with(addr, keyed_client(Some(key), WireCodec::Json))
        .expect("matching keys handshake");
    for shard in shards {
        shard.server.shutdown();
    }

    // The mirror case: a keyed client refuses an unkeyed server rather than
    // silently sending MAC-less frames.
    let unkeyed = start_cluster(1, None);
    expect_unauthenticated(TcpTransport::connect_with(
        unkeyed[0].server.local_addr(),
        keyed_client(
            Some(ClusterKey::from_secret(b"client-only-key")),
            WireCodec::Json,
        ),
    ));
    for shard in unkeyed {
        shard.server.shutdown();
    }
}

#[test]
fn router_fails_over_when_a_shard_is_killed_mid_run() {
    let shards = start_cluster(2, None);
    let endpoints = endpoints_of(&shards);
    let router = ShardRouter::connect(endpoints.iter().cloned(), RouterConfig::default()).unwrap();

    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let ranking = rendezvous_rank(&endpoints, request.privacy_level, request.delta);
    router.privacy_forest(request).expect("first request");
    assert_eq!(router.cluster_stats().failovers, 0);

    // Kill the owner; the cached connection dies with it.
    let mut shards = shards;
    let owner = shards.remove(ranking[0]);
    owner.server.shutdown();

    // The same key now fails over to the surviving shard (which may serve it
    // straight from its replicated cache) instead of erroring.
    router
        .privacy_forest(request)
        .expect("failover to the surviving shard");
    let stats = router.cluster_stats();
    assert!(stats.failovers >= 1, "{stats:?}");
    let survivor = stats
        .peers
        .iter()
        .find(|p| p.endpoint == endpoints[ranking[1]])
        .unwrap();
    assert!(survivor.requests >= 1, "{stats:?}");

    for shard in shards {
        shard.server.shutdown();
    }
}
