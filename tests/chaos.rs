//! Chaos tests for the protocol 1.5 resilience layer: liveness probing marks
//! a killed shard `Down` so routing skips it (and probation re-admits it once
//! it answers again), a restarted shard re-warms its cache from peers with
//! zero LP solver invocations, and scripted fault injection ([`FaultPlan`])
//! proves that dropped frames, corrupted MACs and torn connections surface as
//! structured errors on a fail-fast poisoned connection — never as a hang.
//!
//! Everything observable is asserted over the wire `Stats` frame where the
//! contract is about a server, and through router accessors where it is about
//! routing; the tests run unchanged under both reactor backends
//! (`CORGI_REACTOR_BACKEND`).

use corgi::core::LocationTree;
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::MatrixRequest;
use corgi::framework::{
    rendezvous_rank, CachingService, ClientConfig, ClusterKey, FaultAction, FaultPlan, FaultSite,
    ForestGenerator, HealthConfig, MatrixService, PeerHealthState, ReplicatingService,
    ReplicationConfig, Replicator, RouterConfig, ServerConfig, ServiceErrorKind, ShardRouter,
    TcpServer, TcpTransport, TransportConfig, WireCodec,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared test world: a small grid, its empirical prior, and a server
/// config sized so a cold solve finishes quickly.
fn world() -> (HexGrid, PriorDistribution, ServerConfig) {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let config = ServerConfig::builder()
        .robust_iterations(1)
        .targets_per_subtree(3)
        .worker_threads(2)
        .build();
    (grid, prior, config)
}

/// Aggressive probe cadence so state transitions land within test deadlines.
fn fast_health() -> HealthConfig {
    HealthConfig {
        probe_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(200),
        failure_threshold: 2,
        probation_successes: 2,
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        codecs: vec![WireCodec::Binary, WireCodec::Json],
        read_timeout: Some(Duration::from_secs(30)),
        ..ClientConfig::default()
    }
}

/// One booted shard plus the replicator handle the mesh is wired through.
struct Shard {
    server: TcpServer,
    replicator: Arc<Replicator>,
}

/// Boot one shard of the replication mesh at `addr` (use `127.0.0.1:0` for an
/// ephemeral port).  Retries the bind briefly so a just-killed shard can be
/// revived at its old address while the OS releases the socket.
fn boot_shard(
    addr: &str,
    health: Option<HealthConfig>,
    grid: &HexGrid,
    prior: &PriorDistribution,
    config: ServerConfig,
) -> Shard {
    let replicator = Replicator::new(ReplicationConfig {
        health,
        // Deterministic negotiation regardless of CORGI_WIRE_CODEC.
        codecs: vec![WireCodec::Binary, WireCodec::Json],
        ..ReplicationConfig::default()
    });
    let service = Arc::new(CachingService::with_defaults(ReplicatingService::new(
        ForestGenerator::new(LocationTree::new(grid.clone()), prior.clone(), config),
        Arc::clone(&replicator),
    )));
    let transport_config = || TransportConfig {
        replication: Some(Arc::clone(&replicator)),
        // Payload pushes and digest pulls carry a whole encoded forest.
        max_inbound_frame: 8 * 1024 * 1024,
        codecs: vec![WireCodec::Binary, WireCodec::Json],
        ..TransportConfig::default()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let server = loop {
        match TcpServer::bind(
            addr,
            Arc::clone(&service) as Arc<dyn MatrixService>,
            transport_config(),
        ) {
            Ok(server) => break server,
            Err(error) => {
                assert!(
                    Instant::now() < deadline,
                    "binding a shard at {addr} kept failing: {error}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    Shard { server, replicator }
}

/// Boot an `n`-shard cluster wired into a full replication mesh.
fn start_cluster(n: usize, health: Option<HealthConfig>) -> Vec<Shard> {
    let (grid, prior, config) = world();
    let shards: Vec<Shard> = (0..n)
        .map(|_| boot_shard("127.0.0.1:0", health.clone(), &grid, &prior, config))
        .collect();
    let endpoints = endpoints_of(&shards);
    for (index, shard) in shards.iter().enumerate() {
        for (peer, endpoint) in endpoints.iter().enumerate() {
            if peer != index {
                shard.replicator.add_peer(endpoint.clone());
            }
        }
    }
    shards
}

fn endpoints_of(shards: &[Shard]) -> Vec<String> {
    shards
        .iter()
        .map(|s| s.server.local_addr().to_string())
        .collect()
}

/// Poll `condition` until it holds or the deadline expires.
fn wait_for(what: &str, timeout: Duration, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !condition() {
        assert!(
            Instant::now() < deadline,
            "timed out after {timeout:?} waiting for: {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn probes_mark_a_killed_shard_down_and_probation_readmits_it() {
    let shards = start_cluster(2, Some(fast_health()));
    let endpoints = endpoints_of(&shards);
    let router = ShardRouter::connect(
        endpoints.iter().cloned(),
        RouterConfig {
            client: client_config(),
            retry_backoff: Duration::from_millis(5),
            health: Some(fast_health()),
            ..RouterConfig::default()
        },
    )
    .expect("router connects");

    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let ranking = rendezvous_rank(&endpoints, request.privacy_level, request.delta);
    let owner = ranking[0];
    let survivor = ranking[1];
    router.privacy_forest(request).expect("initial solve");

    // Kill the owner; the prober must condemn it without any request's help.
    let mut shards = shards;
    let dead = shards.remove(owner);
    dead.server.shutdown();
    wait_for(
        "the prober to mark the dead shard Down",
        Duration::from_secs(10),
        || router.shard_health()[owner] == PeerHealthState::Down,
    );

    // After detection, traffic keeps flowing and *nothing* touches the dead
    // shard: its connect/request counters freeze — no request pays a connect
    // timeout against a known-dead endpoint.
    let before = router.cluster_stats().peers[owner].clone();
    for _ in 0..5 {
        router
            .privacy_forest(request)
            .expect("the survivor serves the key");
    }
    let stats = router.cluster_stats();
    let after = &stats.peers[owner];
    assert_eq!(after.requests, before.requests, "{after:?}");
    assert_eq!(after.connects, before.connects, "{after:?}");
    assert!(stats.probes_sent > 0, "{stats:?}");
    assert!(stats.peers_down >= 1, "{stats:?}");

    // The surviving server runs its own reactor probe task over the
    // replication links; its verdict travels the wire `Stats` frame.
    let survivor_conn = TcpTransport::connect_with(endpoints[survivor].as_str(), client_config())
        .expect("stats connection to the survivor");
    wait_for(
        "the survivor's probe counters over the wire",
        Duration::from_secs(10),
        || {
            let cluster = survivor_conn
                .server_stats()
                .expect("stats frame")
                .cluster
                .expect("cluster stats present");
            cluster.probes_sent > 0 && cluster.peers_down >= 1
        },
    );

    // Revive the dead endpoint: probation must re-admit it, after which the
    // owner serves its own key again.
    let (grid, prior, config) = world();
    let revived = boot_shard(&endpoints[owner], None, &grid, &prior, config);
    wait_for(
        "probation to re-admit the revived shard",
        Duration::from_secs(10),
        || router.shard_health()[owner] == PeerHealthState::Healthy,
    );
    let before = router.cluster_stats().peers[owner].requests;
    router.privacy_forest(request).expect("the owner is back");
    assert!(
        router.cluster_stats().peers[owner].requests > before,
        "a re-admitted shard takes traffic again"
    );

    revived.server.shutdown();
    for shard in shards {
        shard.server.shutdown();
    }
}

#[test]
fn restarted_shard_rewarms_from_peers_with_zero_solves() {
    let shards = start_cluster(2, None);
    let endpoints = endpoints_of(&shards);

    // Four cold misses on shard 0; replication makes them resident on shard 1.
    let conn0 =
        TcpTransport::connect_with(endpoints[0].as_str(), client_config()).expect("shard 0");
    for delta in 0..4usize {
        conn0
            .privacy_forest(MatrixRequest {
                privacy_level: 1,
                delta,
            })
            .expect("cold solve");
    }
    let conn1 =
        TcpTransport::connect_with(endpoints[1].as_str(), client_config()).expect("shard 1");
    wait_for(
        "replication pushes to land on shard 1",
        Duration::from_secs(10),
        || {
            conn1
                .server_stats()
                .expect("stats frame")
                .cache
                .expect("cache stats")
                .entries
                >= 4
        },
    );

    // Kill shard 0 and restart it at the same address with a cold cache.
    let mut shards = shards;
    let dead = shards.remove(0);
    dead.server.shutdown();
    let (grid, prior, config) = world();
    let revived = boot_shard(&endpoints[0], None, &grid, &prior, config);

    // Anti-entropy pull: the whole working set comes over the network.
    let report = revived
        .server
        .rewarm_from_peers(&[endpoints[1].clone()], client_config());
    assert_eq!(report.peers_reached, 1, "{report:?}");
    assert_eq!(report.missing, 4, "{report:?}");
    assert_eq!(report.pulled, 4, "{report:?}");
    assert!(report.is_complete(), "{report:?}");

    // The wire contract on the restarted shard: every key resident, the pull
    // counted, and — the whole point — zero cache misses, i.e. the LP solver
    // was never invoked to rejoin.
    let conn =
        TcpTransport::connect_with(endpoints[0].as_str(), client_config()).expect("revived shard");
    let stats = conn.server_stats().expect("stats frame");
    let cache = stats.cache.expect("cache stats");
    assert_eq!(cache.entries, 4, "{cache:?}");
    assert_eq!(cache.misses, 0, "re-warm must not invoke the solver");
    let cluster = stats.cluster.expect("cluster stats");
    assert_eq!(cluster.rewarm_keys_pulled, 4, "{cluster:?}");

    // The serving peer answered every pull from cache: repairs counted, and
    // it never solved anything either (its copies arrived as pushes).
    let peer = conn1.server_stats().expect("stats frame");
    assert_eq!(peer.cluster.expect("cluster stats").pushes_repaired, 4);
    assert_eq!(peer.cache.expect("cache stats").misses, 0);

    // Serving the re-warmed keys is pure cache hits.
    for delta in 0..4usize {
        conn.privacy_forest(MatrixRequest {
            privacy_level: 1,
            delta,
        })
        .expect("re-warmed key serves");
    }
    let cache = conn.server_stats().unwrap().cache.unwrap();
    assert_eq!(cache.hits, 4, "{cache:?}");
    assert_eq!(cache.misses, 0, "{cache:?}");

    // A second pull is a no-op: everything already resident.
    let again = revived
        .server
        .rewarm_from_peers(&[endpoints[1].clone()], client_config());
    assert_eq!(again.pulled, 0, "{again:?}");
    assert_eq!(again.already_resident, 4, "{again:?}");

    revived.server.shutdown();
    for shard in shards {
        shard.server.shutdown();
    }
}

#[test]
fn scripted_faults_surface_structured_errors_and_never_hang() {
    let (grid, prior, config) = world();
    let key = ClusterKey::from_secret(b"chaos-fault-key");
    // Server-send steps are deterministic because exactly one connection
    // exchanges at a time: conn0 hello=0, two warm-up solves=1,2; conn1
    // hello=3, cache hit=4 (dropped); conn2 hello=5, hit=6 (MAC corrupted);
    // conn3 hello=7, hit=8, stats=9; conn4 hello=10, hit=11; conn5 hello=12.
    let server_plan = Arc::new(FaultPlan::scripted([
        (FaultSite::ServerSend, 4, FaultAction::DropFrame),
        (FaultSite::ServerSend, 6, FaultAction::CorruptMac),
    ]));
    let service = Arc::new(CachingService::with_defaults(ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        config,
    )));
    let server = TcpServer::bind(
        "127.0.0.1:0",
        service as Arc<dyn MatrixService>,
        TransportConfig {
            cluster_key: Some(key.clone()),
            fault_plan: Some(Arc::clone(&server_plan)),
            codecs: vec![WireCodec::Binary, WireCodec::Json],
            ..TransportConfig::default()
        },
    )
    .expect("binding the faulted server");
    let addr = server.local_addr();
    let client = |plan: Option<Arc<FaultPlan>>, read_timeout: Duration| ClientConfig {
        cluster_key: Some(key.clone()),
        codecs: vec![WireCodec::Json],
        read_timeout: Some(read_timeout),
        fault_plan: plan,
        ..ClientConfig::default()
    };
    let request = |delta: usize| MatrixRequest {
        privacy_level: 1,
        delta,
    };

    // Warm both keys with a generous deadline so every faulted exchange below
    // is a cache hit and its timing is the fault's, not the solver's.
    let conn0 = TcpTransport::connect_with(addr, client(None, Duration::from_secs(30))).unwrap();
    conn0.privacy_forest(request(0)).expect("warm-up solve");
    conn0.privacy_forest(request(1)).expect("warm-up solve");

    // A dropped response: the read deadline turns frame loss into a bounded,
    // structured transport error — not a hang — and poisons the connection.
    let conn1 = TcpTransport::connect_with(addr, client(None, Duration::from_secs(1))).unwrap();
    let started = Instant::now();
    let error = conn1
        .privacy_forest(request(0))
        .expect_err("the response was dropped");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "a lost frame must be bounded by the read deadline"
    );
    assert_eq!(error.kind, ServiceErrorKind::Transport, "{error}");
    // Poisoned: the next call fails fast without touching the socket (a late
    // reply would desynchronize every subsequent exchange).
    let started = Instant::now();
    conn1.privacy_forest(request(0)).expect_err("fails fast");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "no socket wait"
    );

    // A corrupted MAC trailer: rejected as Unauthenticated, then fail-fast.
    let conn2 = TcpTransport::connect_with(addr, client(None, Duration::from_secs(5))).unwrap();
    let error = conn2
        .privacy_forest(request(0))
        .expect_err("the MAC was flipped in flight");
    assert_eq!(error.kind, ServiceErrorKind::Unauthenticated, "{error}");
    conn2
        .privacy_forest(request(0))
        .expect_err("stays poisoned");

    // The server itself is unharmed: a fresh connection serves and reports.
    let conn3 = TcpTransport::connect_with(addr, client(None, Duration::from_secs(5))).unwrap();
    conn3
        .privacy_forest(request(0))
        .expect("the server survived its own faults");
    let stats = conn3.server_stats().expect("stats frame");
    assert_eq!(
        stats.transport.transport_errors, 0,
        "injected faults are not server errors: {stats:?}"
    );

    // Client-side injection: tearing the connection mid-exchange poisons it
    // with a structured error instead of desynchronizing silently.
    let close_plan = Arc::new(FaultPlan::scripted([(
        FaultSite::ClientSend,
        1,
        FaultAction::CloseConnection,
    )]));
    let conn4 =
        TcpTransport::connect_with(addr, client(Some(close_plan), Duration::from_secs(5))).unwrap();
    conn4
        .privacy_forest(request(0))
        .expect("pre-fault exchange");
    let error = conn4
        .privacy_forest(request(1))
        .expect_err("the socket was torn down mid-exchange");
    assert_eq!(error.kind, ServiceErrorKind::Transport, "{error}");
    conn4.privacy_forest(request(0)).expect_err("fails fast");

    // Client-side frame loss: the request never leaves, the reply never
    // comes, the deadline fires, the connection poisons.
    let drop_plan = Arc::new(FaultPlan::scripted([(
        FaultSite::ClientSend,
        0,
        FaultAction::DropFrame,
    )]));
    let conn5 =
        TcpTransport::connect_with(addr, client(Some(drop_plan), Duration::from_secs(1))).unwrap();
    let started = Instant::now();
    let error = conn5
        .privacy_forest(request(0))
        .expect_err("the request was dropped");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "bounded by the deadline"
    );
    assert_eq!(error.kind, ServiceErrorKind::Transport, "{error}");
    conn5.privacy_forest(request(0)).expect_err("fails fast");

    // Partitions are level-triggered and heal: connects fail fast while the
    // partition holds, then succeed again.
    let partition_plan = Arc::new(FaultPlan::empty());
    let resolved = addr.to_socket_addrs().unwrap().next().unwrap().to_string();
    partition_plan.partition(&resolved);
    let partitioned_client = ClientConfig {
        fault_plan: Some(Arc::clone(&partition_plan)),
        ..client(None, Duration::from_secs(5))
    };
    let started = Instant::now();
    let error = TcpTransport::connect_with(addr, partitioned_client.clone())
        .err()
        .expect("a partitioned endpoint must not connect");
    assert!(started.elapsed() < Duration::from_millis(500), "fails fast");
    assert_eq!(error.kind, ServiceErrorKind::Transport, "{error}");
    partition_plan.heal(&resolved);
    TcpTransport::connect_with(addr, partitioned_client).expect("healed partition connects");

    server.shutdown();
}
