//! Round-trip tests of the derive macros against the Value data model.

use crate::de::{from_value, DeError};
use crate::{Deserialize, Serialize, Value};
use std::collections::HashMap;

fn round_trip<T>(value: &T) -> T
where
    T: Serialize + for<'de> Deserialize<'de>,
{
    from_value(value.to_value()).expect("round trip")
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Plain {
    id: u32,
    weight: f64,
    name: String,
    flag: bool,
}

#[test]
fn named_struct_round_trip() {
    let v = Plain {
        id: 7,
        weight: 2.5,
        name: "cell".into(),
        flag: true,
    };
    assert_eq!(round_trip(&v), v);
    match v.to_value() {
        Value::Object(map) => {
            assert_eq!(map.get("id"), Some(&Value::Number(7.0)));
            assert_eq!(map.get("flag"), Some(&Value::Bool(true)));
        }
        other => panic!("expected object, got {}", other.kind()),
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    inner: Plain,
    series: Vec<f64>,
    maybe: Option<u8>,
    missing: Option<u8>,
    pairs: Vec<(u32, f64)>,
    by_id: HashMap<u64, String>,
}

#[test]
fn nested_struct_round_trip() {
    let mut by_id = HashMap::new();
    by_id.insert(3u64, "three".to_string());
    by_id.insert(11u64, "eleven".to_string());
    let v = Nested {
        inner: Plain {
            id: 1,
            weight: -0.25,
            name: String::new(),
            flag: false,
        },
        series: vec![1.0, 2.0, 3.5],
        maybe: Some(9),
        missing: None,
        pairs: vec![(1, 0.5), (2, 1.5)],
        by_id,
    };
    assert_eq!(round_trip(&v), v);
}

#[test]
fn missing_optional_field_defaults_to_none() {
    let mut map = crate::Map::new();
    map.insert("maybe".into(), Value::Number(4.0));
    // `missing`, `inner`, etc. absent: Option fields become None, required
    // fields error.
    let err = from_value::<Nested>(Value::Object(map)).unwrap_err();
    assert!(err.to_string().contains("inner"), "got: {err}");
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct NewtypeKm(f64);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(u8, String);

#[test]
fn tuple_structs() {
    // Newtype structs serialize transparently, like real serde.
    assert_eq!(NewtypeKm(3.25).to_value(), Value::Number(3.25));
    assert_eq!(round_trip(&NewtypeKm(3.25)), NewtypeKm(3.25));

    let p = Pair(2, "x".into());
    assert_eq!(
        p.to_value(),
        Value::Array(vec![Value::Number(2.0), Value::String("x".into())])
    );
    assert_eq!(round_trip(&p), p);
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Mixed {
    Nothing,
    One(f64),
    Two(u8, u8),
    Named { a: u32, b: String },
}

#[test]
fn enum_representations() {
    // Externally tagged, like real serde's default.
    assert_eq!(Mixed::Nothing.to_value(), Value::String("Nothing".into()));
    for v in [
        Mixed::Nothing,
        Mixed::One(1.5),
        Mixed::Two(3, 4),
        Mixed::Named {
            a: 9,
            b: "q".into(),
        },
    ] {
        assert_eq!(round_trip(&v), v);
    }
}

#[test]
fn unknown_variant_is_an_error() {
    let err = from_value::<Mixed>(Value::String("Bogus".into())).unwrap_err();
    assert!(err.to_string().contains("Bogus"), "got: {err}");
}

#[test]
fn integer_bounds_are_checked() {
    assert!(from_value::<u8>(Value::Number(255.0)).is_ok());
    assert!(from_value::<u8>(Value::Number(256.0)).is_err());
    assert!(from_value::<u8>(Value::Number(1.5)).is_err());
    assert!(from_value::<i32>(Value::Number(-5.0)).is_ok());
    assert!(from_value::<usize>(Value::Number(-1.0)).is_err());
}

#[test]
fn custom_error_messages_propagate() {
    // Mirrors the handwritten LatLng impl pattern: a manual Deserialize that
    // validates and reports through serde::de::Error::custom.
    #[derive(Debug, PartialEq)]
    struct Percent(f64);

    impl<'de> Deserialize<'de> for Percent {
        fn deserialize<D: crate::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let raw = f64::deserialize(d)?;
            if (0.0..=100.0).contains(&raw) {
                Ok(Percent(raw))
            } else {
                Err(crate::de::Error::custom(format!("{raw} out of range")))
            }
        }
    }

    assert_eq!(
        from_value::<Percent>(Value::Number(40.0)),
        Ok(Percent(40.0))
    );
    let err: DeError = from_value::<Percent>(Value::Number(140.0)).unwrap_err();
    assert!(err.to_string().contains("out of range"));
}
