//! `Serialize` / `Deserialize` implementations for standard-library types.

use crate::de::{Deserialize, Deserializer, Error, ValueDeserializer};
use crate::value::{key_to_string, Value};
use crate::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_number!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

impl<T: Serialize + Ord, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output regardless of hasher state.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted by stringified key (the Map is a BTreeMap), so output is
        // deterministic regardless of hasher state.
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn expect<'de, D: Deserializer<'de>>(d: D) -> Result<Value, D::Error> {
    d.take_value()
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match expect(d)? {
                    Value::Number(n) if n.fract() == 0.0
                        && n >= <$t>::MIN as f64
                        && n <= <$t>::MAX as f64 => Ok(n as $t),
                    other => Err(D::Error::custom(format_args!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match expect(d)? {
                    Value::Number(n) => Ok(n as $t),
                    // serde_json renders non-finite floats as null; accept the
                    // round-trip.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(D::Error::custom(format_args!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match expect(d)? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match expect(d)? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format_args!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        expect(d)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match expect(d)? {
            Value::Null => Ok(None),
            value => crate::__private::convert(value, "Option").map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Rc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Rc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match expect(d)? {
            Value::Array(items) => items
                .into_iter()
                .enumerate()
                .map(|(i, v)| crate::__private::convert(v, &format!("[{i}]")))
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let items = crate::__private::tuple_payload::<D::Error>(expect(d)?, $len, "tuple")?;
                let mut items = items.into_iter();
                Ok(($({
                    let _ = $n;
                    crate::__private::convert(items.next().unwrap(), "tuple element")?
                },)+))
            }
        }
    )*};
}

deserialize_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|items| items.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|items| items.into_iter().collect())
    }
}

/// Deserialize an object key. Keys arrive as strings; if `K` is not a string
/// type, retry the conversion with the key parsed as a number (serde_json
/// stringifies numeric map keys on the way out).
fn convert_key<'de, K: Deserialize<'de>, E: Error>(key: String) -> Result<K, E> {
    let parsed_number = key.parse::<f64>().ok();
    match K::deserialize(ValueDeserializer::new(Value::String(key))) {
        Ok(k) => Ok(k),
        Err(first_err) => match parsed_number {
            Some(n) => K::deserialize(ValueDeserializer::new(Value::Number(n)))
                .map_err(|e| E::custom(format_args!("map key: {e}"))),
            None => Err(E::custom(format_args!("map key: {first_err}"))),
        },
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match expect(d)? {
            Value::Object(map) => map
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        convert_key::<K, D::Error>(k)?,
                        crate::__private::convert(v, "map value")?,
                    ))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match expect(d)? {
            Value::Object(map) => map
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        convert_key::<K, D::Error>(k)?,
                        crate::__private::convert(v, "map value")?,
                    ))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}
