//! Deserialization traits mirroring serde's signatures over the [`Value`] tree.

use crate::value::Value;
use std::fmt;

/// Deserialization error constraint, mirroring `serde::de::Error`.
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Build an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// The concrete error type produced by [`ValueDeserializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A source of one [`Value`], mirroring `serde::Deserializer`.
///
/// Real serde drives a visitor; this shim simply hands over the parsed value
/// tree. The lifetime parameter is kept so handwritten impls are written
/// exactly as they would be against real serde.
pub trait Deserializer<'de>: Sized {
    /// Error type reported by this deserializer.
    type Error: Error;

    /// Consume the deserializer, yielding the underlying value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from a [`Value`] tree, mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The only [`Deserializer`] in this workspace: a wrapped [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wrap a value tree.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}

/// Deserialize a `T` straight from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer::new(value))
}
