//! Offline shim of `serde` (with derive) for network-less builds.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the serde API surface the CORGI workspace actually uses, built
//! around a concrete JSON-like [`Value`] tree instead of serde's
//! visitor-based data model:
//!
//! * [`Serialize`] — converts a value into a [`Value`] tree;
//! * [`Deserialize`] / [`Deserializer`] — rebuilds a value from a [`Value`],
//!   keeping serde's `impl<'de> Deserialize<'de>` signature so handwritten
//!   impls (e.g. validated deserialization of `LatLng`) read identically to
//!   real serde;
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the companion
//!   `serde_derive` shim, supporting named-field structs, tuple structs and
//!   enums with unit/newtype/tuple/struct variants (externally tagged, like
//!   serde's default representation).
//!
//! The `serde_json` shim builds its text format on top of this [`Value`].

#![warn(missing_docs)]

// Let the `::serde::...` paths emitted by the derive macros resolve inside
// this crate's own tests.
extern crate self as serde;

pub mod de;
mod impls;
mod value;

pub use de::{Deserialize, Deserializer, ValueDeserializer};
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Value};

/// Conversion of a Rust value into a [`Value`] tree.
///
/// Unlike real serde this is not generic over an output format: every
/// serializer in this workspace (only JSON) goes through [`Value`].
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

#[cfg(test)]
mod tests;

/// Helpers used by `serde_derive`-generated code. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::de::{Deserialize, Error, ValueDeserializer};
    use super::{Map, Value};

    /// Remove and deserialize one named field from an object.
    pub fn take_field<'de, T, E>(obj: &mut Map, key: &str, ty: &str) -> Result<T, E>
    where
        T: Deserialize<'de>,
        E: Error,
    {
        let value = obj.remove(key).unwrap_or(Value::Null);
        T::deserialize(ValueDeserializer::new(value))
            .map_err(|e| E::custom(format_args!("{ty}.{key}: {e}")))
    }

    /// Deserialize a positional value (tuple-struct / tuple-variant field).
    pub fn convert<'de, T, E>(value: Value, ctx: &str) -> Result<T, E>
    where
        T: Deserialize<'de>,
        E: Error,
    {
        T::deserialize(ValueDeserializer::new(value))
            .map_err(|e| E::custom(format_args!("{ctx}: {e}")))
    }

    /// Interpret a value as the payload array of a tuple variant.
    pub fn tuple_payload<E: Error>(value: Value, arity: usize, ctx: &str) -> Result<Vec<Value>, E> {
        match value {
            Value::Array(items) if items.len() == arity => Ok(items),
            Value::Array(items) => Err(E::custom(format_args!(
                "{ctx}: expected {arity} elements, got {}",
                items.len()
            ))),
            other => Err(E::custom(format_args!(
                "{ctx}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Interpret a value as the payload object of a struct variant / struct.
    pub fn object_payload<E: Error>(value: Value, ctx: &str) -> Result<Map, E> {
        match value {
            Value::Object(map) => Ok(map),
            other => Err(E::custom(format_args!(
                "{ctx}: expected object, got {}",
                other.kind()
            ))),
        }
    }
}
