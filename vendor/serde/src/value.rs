//! The JSON-like value tree shared by the `serde` and `serde_json` shims.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Object representation: a sorted map from string keys to values.
pub type Map = BTreeMap<String, Value>;

/// A JSON value tree.
///
/// Numbers are stored as `f64`, matching what the workspace serializes
/// (coordinates, probabilities, small counters); integers round-trip exactly
/// up to 2^53.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in an object (or `None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Render a JSON number the way `serde_json` does: integral values
    /// without a fractional part, non-finite values as `null`.
    pub(crate) fn render_number<W: fmt::Write>(n: f64, out: &mut W) -> fmt::Result {
        if !n.is_finite() {
            out.write_str("null")
        } else if n == n.trunc() && n.abs() < 1e15 {
            write!(out, "{}", n as i64)
        } else {
            write!(out, "{n}")
        }
    }

    pub(crate) fn render_string<W: fmt::Write>(s: &str, out: &mut W) -> fmt::Result {
        out.write_char('"')?;
        for c in s.chars() {
            match c {
                '"' => out.write_str("\\\"")?,
                '\\' => out.write_str("\\\\")?,
                '\n' => out.write_str("\\n")?,
                '\r' => out.write_str("\\r")?,
                '\t' => out.write_str("\\t")?,
                '\u{08}' => out.write_str("\\b")?,
                '\u{0c}' => out.write_str("\\f")?,
                c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
                c => out.write_char(c)?,
            }
        }
        out.write_char('"')
    }

    /// Render the value as compact JSON into any [`fmt::Write`] sink.
    ///
    /// This is the streaming serializer behind [`Display`](fmt::Display) and
    /// `serde_json::to_string` / `to_vec_into`: writing directly into a
    /// caller-provided buffer avoids the intermediate `String` that a
    /// `to_string` + copy round trip would allocate.
    pub fn write_compact<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        match self {
            Value::Null => out.write_str("null"),
            Value::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Value::Number(n) => Self::render_number(*n, out),
            Value::String(s) => Self::render_string(s, out),
            Value::Array(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.write_compact(out)?;
                }
                out.write_char(']')
            }
            Value::Object(map) => {
                out.write_char('{')?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    Self::render_string(k, out)?;
                    out.write_char(':')?;
                    v.write_compact(out)?;
                }
                out.write_char('}')
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (streamed straight into the formatter).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_compact(f)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Auto-vivifying object indexing, like `serde_json`: indexing a missing
    /// key inserts `Null`. Panics when `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(map) => map.entry(key.to_owned()).or_insert(Value::Null),
            other => panic!("cannot index into JSON {}", other.kind()),
        }
    }
}

impl Index<String> for Value {
    type Output = Value;

    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        &mut self[key.as_str()]
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Convert a serialized key to the string form JSON objects require.
///
/// String keys pass through; numeric and boolean keys are rendered the way
/// `serde_json` renders map keys.
pub(crate) fn key_to_string(value: Value) -> String {
    match value {
        Value::String(s) => s,
        Value::Number(n) => {
            let mut out = String::new();
            Value::render_number(n, &mut out).expect("writing to a String cannot fail");
            out
        }
        Value::Bool(b) => b.to_string(),
        other => panic!("JSON object keys must be strings, got {}", other.kind()),
    }
}
