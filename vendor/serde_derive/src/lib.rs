//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! simplified Value-based data model of the vendored `serde` shim, without
//! `syn`/`quote`: the derive input is parsed directly from the raw
//! `proc_macro::TokenStream`.
//!
//! Supported shapes (everything the CORGI workspace uses):
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, wider ones as
//!   arrays),
//! * unit structs,
//! * enums with unit / newtype / tuple / struct variants, in serde's default
//!   externally-tagged representation.
//!
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported; hitting one is a compile error naming this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported by the vendored serde_derive"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Shape::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Shape::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!(
                "serde shim: unsupported struct body for `{name}`: {other:?}"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Shape::Enum { name, variants })
            }
            other => Err(format!(
                "serde shim: expected enum body for `{name}`, got {other:?}"
            )),
        },
        kw => Err(format!("serde shim: cannot derive for `{kw}` items")),
    }
}

/// Skip any number of outer attributes (`#[...]`, including doc comments) and
/// an optional visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `ident: Type, ...` out of a brace-delimited field list.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde shim: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde shim: expected `:` after field `{field}`, got {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket aware;
/// parenthesized / bracketed types arrive as atomic groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde shim: expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde shim: explicit discriminant on variant `{name}` is not supported"
            ));
        }
        variants.push(Variant { name, kind });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::new();
            if fields.is_empty() {
                body.push_str("let map = ::serde::Map::new();\n");
            } else {
                body.push_str("let mut map = ::serde::Map::new();\n");
                for f in fields {
                    body.push_str(&format!(
                        "map.insert(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}));\n"
                    ));
                }
            }
            body.push_str("::serde::Value::Object(map)");
            impl_serialize(name, &body)
        }
        Shape::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|n| format!("::serde::Serialize::to_value(&self.{n})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Array(vec![{}])", items.join(", ")),
            )
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0));\n\
                         ::serde::Value::Object(map)\n}}\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|n| format!("f{n}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(vec![{items}]));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from({vn:?}), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n}}\n"
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = format!(
                "let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                 let mut obj = ::serde::__private::object_payload::<D::Error>(value, {name:?})?;\n"
            );
            if fields.is_empty() {
                body = body.replace("let mut obj", "let _obj");
            }
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::__private::take_field(&mut obj, {f:?}, {name:?})?,\n"
                ));
            }
            body.push_str("})");
            body
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "let value = ::serde::Deserializer::take_value(deserializer)?;\n\
             ::std::result::Result::Ok({name}(::serde::__private::convert(value, {name:?})?))"
        ),
        Shape::TupleStruct { name, arity } => {
            let mut body = format!(
                "let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                 let items = ::serde::__private::tuple_payload::<D::Error>(value, {arity}, {name:?})?;\n\
                 let mut items = items.into_iter();\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for _ in 0..*arity {
                body.push_str(&format!(
                    "::serde::__private::convert(items.next().unwrap(), {name:?})?,\n"
                ));
            }
            body.push_str("))");
            body
        }
        Shape::UnitStruct { name } => format!(
            "let _ = ::serde::Deserializer::take_value(deserializer)?;\n\
             ::std::result::Result::Ok({name})"
        ),
        Shape::Enum { name, variants } => {
            let mut string_arms = String::new();
            let mut object_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => string_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => object_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::__private::convert(payload, {name:?})?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let mut arm = format!(
                            "{vn:?} => {{\n\
                             let items = ::serde::__private::tuple_payload::<D::Error>(payload, {arity}, {name:?})?;\n\
                             let mut items = items.into_iter();\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        );
                        for _ in 0..*arity {
                            arm.push_str(&format!(
                                "::serde::__private::convert(items.next().unwrap(), {name:?})?,\n"
                            ));
                        }
                        arm.push_str("))\n}\n");
                        object_arms.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "{vn:?} => {{\n\
                             let mut inner = ::serde::__private::object_payload::<D::Error>(payload, {name:?})?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: ::serde::__private::take_field(&mut inner, {f:?}, {name:?})?,\n"
                            ));
                        }
                        arm.push_str("})\n}\n");
                        object_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                 match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{string_arms}\
                 other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(map) => {{\n\
                 let mut entries = map.into_iter();\n\
                 let (tag, payload) = match entries.next() {{\n\
                 ::std::option::Option::Some(kv) => kv,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(\"empty object for enum {name}\")),\n}};\n\
                 let _ = &payload;\n\
                 match tag.as_str() {{\n{object_arms}\
                 other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected {name} variant, got {{}}\", other.kind()))),\n}}"
            )
        }
    };
    let name = shape_name(shape);
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::std::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn shape_name(shape: &Shape) -> &str {
    match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    }
}
