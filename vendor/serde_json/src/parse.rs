//! A recursive-descent JSON text parser producing [`Value`] trees.

use crate::Error;
use serde::{Map, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let int_len = self.pos - int_start;
        if int_len == 0 {
            return Err(self.err("number must have an integer part"));
        }
        if int_len > 1 && self.bytes[int_start] == b'0' {
            return Err(Error::new(format!(
                "leading zero in number at byte {int_start}"
            )));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("number must have digits after the decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("number must have digits in the exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos past the digits; skip the
                            // `self.pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) if c < 0x80 => {
                    // Bulk-copy the longest run of plain ASCII: one slice
                    // validation per run instead of per character (validating
                    // the whole remaining input per character made string
                    // parsing quadratic in document size).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || !(0x20..0x80).contains(&b) {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ASCII bytes are valid UTF-8"),
                    );
                }
                Some(_) => {
                    // Multi-byte UTF-8: a scalar is at most 4 bytes, so
                    // validate only that window.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next().expect("non-empty chunk"),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty prefix")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}
