//! Offline shim of `serde_json`, built on the vendored `serde` shim's
//! [`Value`] tree: a full JSON text parser, compact and pretty printers, the
//! [`json!`] macro, and the `to_string` / `to_value` / `to_vec_into` /
//! `from_str` entry points used by the CORGI workspace.

#![warn(missing_docs)]

mod parse;

pub use serde::{Map, Value};

use serde::de::{DeError, Deserialize, ValueDeserializer};
use serde::Serialize;
use std::fmt;

/// Error type for JSON serialization / deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize compact JSON straight into an existing byte buffer.
///
/// The rendered text is appended after whatever `out` already holds, so a
/// caller can reserve framing bytes (e.g. a length-prefixed header) up front
/// and serialize the payload in place instead of serializing to a `String`
/// and copying it into a second buffer.
pub fn to_vec_into<T: Serialize>(value: &T, out: &mut Vec<u8>) {
    struct Utf8Sink<'a>(&'a mut Vec<u8>);
    impl fmt::Write for Utf8Sink<'_> {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0.extend_from_slice(s.as_bytes());
            Ok(())
        }
    }
    value
        .to_value()
        .write_compact(&mut Utf8Sink(out))
        .expect("writing JSON to a Vec cannot fail");
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::deserialize(ValueDeserializer::new(value)).map_err(Error::from)
}

/// Deserialize a typed value from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(value)).map_err(Error::from)
}

fn pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                pretty(v, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Build a [`Value`] from a JSON-like literal.
///
/// Supports `null` / `true` / `false`, array literals, single-level object
/// literals with literal keys, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($element) ),* ])
    };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object_entries!(map; $($entries)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! serialization cannot fail")
    };
}

/// Implementation detail of [`json!`]: munches `"key": value` object entries,
/// routing nested `{...}` / `[...]` literals back through [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!($value));
        $crate::json_object_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert(::std::string::String::from($key), $crate::json!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>(r#""hi\nthere""#).unwrap(), "hi\nthere");
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn to_vec_into_appends_after_reserved_bytes() {
        let mut out = vec![0u8; 7];
        to_vec_into(&json!({ "a": [1, 2], "b": "x" }), &mut out);
        assert_eq!(&out[..7], &[0u8; 7]);
        let text = std::str::from_utf8(&out[7..]).unwrap();
        assert_eq!(text, r#"{"a":[1,2],"b":"x"}"#);
        assert_eq!(text, to_string(&json!({ "a": [1, 2], "b": "x" })).unwrap());
    }

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a": [1, 2.5, null], "b": {"c": "x"}, "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], Value::Number(2.5));
        assert_eq!(v["b"]["c"], Value::String("x".into()));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 7;
        let v = json!({ "locations": n, "series": [1.0, 2.0], "label": "x" });
        assert_eq!(v["locations"], Value::Number(7.0));
        assert_eq!(v["series"][1], Value::Number(2.0));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1, 2]), from_str::<Value>("[1,2]").unwrap());
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = json!({ "a": 1 });
        v[format!("k_{}", 2)] = json!(3.5);
        assert_eq!(v["k_2"], Value::Number(3.5));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": [1, 2], "b": { "c": "str" }, "empty": [] });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" backslash\\ newline\n unicode\u{1F600} control\u{01}";
        let text = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_sequences() {
        assert_eq!(from_str::<String>("\"A\\u00e9\"").unwrap(), "A\u{e9}");
        // Surrogate pair for U+1F600.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn numbers_follow_rfc8259() {
        for ok in ["0", "-0", "7", "-0.5", "10.25", "1e3", "1.5e-3", "2E+8"] {
            assert!(from_str::<Value>(ok).is_ok(), "should accept {ok}");
        }
        for bad in ["01", "-.5", "1.", ".5", "1.e3", "1e", "1e+", "-"] {
            assert!(from_str::<Value>(bad).is_err(), "should reject {bad}");
        }
    }
}
