//! Offline shim of `proptest`.
//!
//! The build environment cannot fetch crates.io dependencies, so this
//! vendored crate implements the `proptest!` DSL surface the CORGI test
//! suites use as *seeded randomized sweeps*: every test runs a fixed number
//! of cases (default 256, overridable with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`) with inputs drawn
//! from the declared strategies by a deterministic per-test RNG.
//!
//! Unlike real proptest there is no shrinking and no failure persistence —
//! a failing case panics with the ordinary `assert!` message. Supported
//! strategies: numeric ranges (`lo..hi`, `lo..=hi`), tuples of strategies,
//! and [`collection::vec`] with an exact or ranged length.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Lengths accepted by [`vec()`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoLenStrategy {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLenStrategy for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoLenStrategy for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Build a [`VecStrategy`] with an exact or ranged length.
    pub fn vec<S: Strategy, L: IntoLenStrategy>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenStrategy> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG, seeded from the test's name.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random strategy draws.
#[macro_export]
macro_rules! proptest {
    // With a config override as the first item.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // The case body runs in a closure so `prop_assume!` can reject
                // the whole case (via `return false`) even from inside the
                // body's own loops, matching real proptest semantics.
                #[allow(clippy::redundant_closure_call)]
                let __case_accepted = (move || -> bool { $body true })();
                if __case_accepted {
                    __accepted += 1;
                }
            }
            assert!(
                __accepted > 0 || __config.cases == 0,
                "proptest shim: every case was rejected by prop_assume!; \
                 the strategies never satisfy the assumption"
            );
        }
    )*};
}

/// `assert!` under a proptest-compatible name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
///
/// Expands to an early `return false` from the case closure the `proptest!`
/// macro wraps around each body, so it rejects the whole case even when
/// invoked inside a loop in the test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        use crate::Strategy;
        let mut a = crate::__seed_rng("x");
        let mut b = crate::__seed_rng("x");
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        use crate::Strategy;
        let mut rng = crate::__seed_rng("lens");
        let exact = crate::collection::vec(0usize..10, 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
        let ranged = crate::collection::vec(0usize..10, 2..5);
        for _ in 0..64 {
            let len = ranged.sample(&mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    proptest! {
        /// The macro itself works end to end, including tuple strategies.
        #[test]
        fn macro_end_to_end(x in 0i64..100, pair in (0u8..7, 0.0f64..1.0)) {
            prop_assume!(x != 13);
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(pair.0 as i64 + x - x, pair.0 as i64);
            prop_assert!(pair.1 >= 0.0 && pair.1 < 1.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Config override parses and bounds the number of cases.
        #[test]
        fn config_override_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        /// `prop_assume!` inside a loop in the body rejects the whole case,
        /// not just the current loop iteration.
        #[test]
        fn assume_inside_loop_rejects_whole_case(threshold in 0usize..20) {
            for i in 0..10usize {
                prop_assume!(i < threshold);
            }
            // Reaching here means no iteration fired the assume, i.e. the
            // case had threshold >= 10. (A `continue`-based assume would let
            // threshold < 10 cases fall through and fail this assertion.)
            prop_assert!(threshold >= 10);
        }
    }

    proptest! {
        /// A universally false assumption makes the test fail loudly instead
        /// of passing with zero effective cases.
        #[test]
        #[should_panic(expected = "every case was rejected")]
        fn all_rejected_cases_panic(x in 0u32..10) {
            prop_assume!(x > 100);
            prop_assert!(x > 100);
        }
    }

    #[test]
    fn float_range_never_returns_exclusive_bound() {
        use crate::Strategy;
        let mut rng = crate::__seed_rng("float-bound");
        // Adjacent f64s near 1e16 are 2.0 apart, so naive lerp can round up
        // to exactly `high`.
        let s = 1.0e16f64..(1.0e16 + 2.0);
        for _ in 0..10_000 {
            let v = s.sample(&mut rng);
            assert!(v < 1.0e16 + 2.0, "sample hit the exclusive upper bound");
        }
    }
}
