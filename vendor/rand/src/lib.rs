//! Offline shim of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate re-implements the small slice of the `rand 0.8` API the CORGI
//! workspace uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`] (a xoshiro256++
//! generator seeded via SplitMix64) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is deterministic for a given seed, which is all the
//! experiments require; it makes no cryptographic claims.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words (object-safe core trait).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.0..1.0)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from an [`Rng`]'s standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform`.
///
/// Implemented generically over [`SampleUniform`] element types (one blanket
/// impl per range shape, like real rand), so integer-literal type inference
/// flows from the call site into the range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from half-open / inclusive bounds.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Sample uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: Rng + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                // Multiply-shift mapping; bias is < 2^-64 per draw, far below
                // anything the experiments can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u: $t = Standard::sample_standard(rng);
                let v = low + u * (high - low);
                // `low + u*(high-low)` can round up to exactly `high` even for
                // u < 1 (e.g. when adjacent floats near `low` are further apart
                // than the span); clamp to keep the half-open contract.
                if !inclusive && v >= high {
                    high.next_down().max(low)
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            let mut rng = rng;
            for i in (1..self.len()).rev() {
                // `&mut R` is Sized, so the default `gen_range` applies.
                let j = (&mut rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4);
            assert!((0..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
