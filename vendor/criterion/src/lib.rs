//! Offline shim of `criterion`.
//!
//! Implements the criterion API surface used by the CORGI benches
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`]) as a
//! plain wall-clock timing harness: each benchmark runs `sample_size` timed
//! samples and reports min / median / max to stdout.
//!
//! When the binary is *not* invoked by `cargo bench` (no `--bench` flag, e.g.
//! under `cargo test`, which runs `harness = false` bench targets in test
//! mode) every benchmark executes exactly one iteration as a smoke test, so
//! the test suite stays fast.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 30,
            smoke_only: !bench_mode,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.smoke_only {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.smoke_only { 1 } else { self.sample_size };
        run_one(&id.to_string(), samples, self.smoke_only, &mut f);
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.criterion.smoke_only {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let label = format!("{}/{}", self.name, id);
        run_one(&label, samples, self.criterion.smoke_only, &mut f);
    }

    /// Benchmark a closure over an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finish the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, smoke_only: bool, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut bencher);
    if smoke_only {
        return;
    }
    let mut durations = bencher.durations;
    if durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    durations.sort();
    let median = durations[durations.len() / 2];
    println!(
        "{label:<50} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
        durations[0],
        median,
        durations[durations.len() - 1],
        durations.len(),
    );
}

/// Declare a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_single_iteration() {
        let mut c = Criterion {
            sample_size: 30,
            smoke_only: true,
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_honors_sample_size() {
        let mut c = Criterion {
            sample_size: 30,
            smoke_only: false,
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(7), &3, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert_eq!(runs, 15);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
