//! Offline shim of `criterion`.
//!
//! Implements the criterion API surface used by the CORGI benches
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::throughput`],
//! [`BenchmarkGroup::warm_up_time`], [`BenchmarkId`], [`Throughput`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`]) as a
//! plain wall-clock timing harness: each benchmark first runs a **warm-up
//! phase** (default 500 ms — caches, allocator and frequency scaling settle
//! before anything is recorded), then `sample_size` timed samples, and reports
//! min / median / max to stdout plus **throughput** (elements or bytes per
//! second, from the median) when the group declares one.
//!
//! Samples go through **outlier rejection** before reporting: Tukey fences at
//! `[q1 − 1.5·IQR, q3 + 1.5·IQR]` drop the stray samples a busy machine
//! produces (a page fault, a scheduler preemption), and the report carries the
//! retained-sample **variance** — standard deviation and coefficient of
//! variation — so perf PRs can be gated on low-noise numbers.
//!
//! When the environment variable `CORGI_BENCH_JSON` names a file, every
//! benchmark (in real bench mode) **appends one JSON object per line** with its
//! post-rejection statistics (`name`, `median_ns`, `min_ns`, `max_ns`,
//! `mean_ns`, `stddev_ns`, `cv_pct`, `samples`, `outliers_rejected`).  CI
//! collects these lines as `BENCH_results.json` and feeds them to the
//! `perf_gate` binary, which fails the build when a named bench regresses
//! against the checked-in `BENCH_baseline.json`.
//!
//! When the binary is *not* invoked by `cargo bench` (no `--bench` flag, e.g.
//! under `cargo test`, which runs `harness = false` bench targets in test
//! mode) every benchmark executes exactly one iteration as a smoke test, so
//! the test suite stays fast.  Setting the environment variable
//! `CORGI_BENCH_SMOKE=1` forces the same single-iteration smoke mode even
//! under `cargo bench` — CI uses this to exercise every bench body cheaply.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let forced_smoke = std::env::var_os("CORGI_BENCH_SMOKE").is_some_and(|v| v != "0");
        Criterion {
            sample_size: 30,
            smoke_only: !bench_mode || forced_smoke,
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the default warm-up duration for subsequent benchmarks.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.smoke_only {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            warm_up_time: None,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.smoke_only { 1 } else { self.sample_size };
        run_one(
            &id.to_string(),
            samples,
            self.smoke_only,
            self.warm_up_time,
            None,
            &mut f,
        );
    }
}

/// Quantity processed per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Override the warm-up duration for this group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = Some(duration);
        self
    }

    /// Declare how much work one iteration performs; enables the
    /// elements/bytes-per-second column in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.criterion.smoke_only {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            samples,
            self.criterion.smoke_only,
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.throughput,
            &mut f,
        );
    }

    /// Benchmark a closure over an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finish the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    recording: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per configured iteration (warm-up calls
    /// run the closure without recording).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            if self.recording {
                self.durations.push(start.elapsed());
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    smoke_only: bool,
    warm_up: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if smoke_only {
        let mut bencher = Bencher {
            samples,
            recording: true,
            durations: Vec::new(),
        };
        f(&mut bencher);
        return;
    }

    // Warm-up phase: run the routine unrecorded until the budget is spent
    // (at least once), so the timed samples see warm caches and allocator.
    let warm_up_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            samples: 1,
            recording: false,
            durations: Vec::new(),
        };
        f(&mut bencher);
        if warm_up_start.elapsed() >= warm_up {
            break;
        }
    }

    let mut bencher = Bencher {
        samples,
        recording: true,
        durations: Vec::new(),
    };
    f(&mut bencher);
    let durations = bencher.durations;
    if durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let stats = SampleStats::from_durations(&durations);
    let rate = throughput
        .map(|t| format_throughput(t, Duration::from_nanos(stats.median_ns as u64)))
        .unwrap_or_default();
    let outliers = if stats.outliers_rejected > 0 {
        format!(", {} outliers rejected", stats.outliers_rejected)
    } else {
        String::new()
    };
    println!(
        "{label:<50} min {:>12?}  median {:>12?}  max {:>12?}  σ {:>10?} (cv {:>5.1}%)  ({} samples{outliers}){rate}",
        Duration::from_nanos(stats.min_ns as u64),
        Duration::from_nanos(stats.median_ns as u64),
        Duration::from_nanos(stats.max_ns as u64),
        Duration::from_nanos(stats.stddev_ns as u64),
        stats.cv_pct,
        stats.samples,
    );
    if let Some(path) = std::env::var_os("CORGI_BENCH_JSON") {
        if let Err(err) = append_json_line(std::path::Path::new(&path), label, &stats) {
            eprintln!("criterion shim: could not append to {path:?}: {err}");
        }
    }
}

/// Post-rejection summary statistics of one benchmark's samples.
#[derive(Debug, Clone, PartialEq)]
struct SampleStats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    mean_ns: f64,
    stddev_ns: f64,
    /// Coefficient of variation (σ / mean) in percent.
    cv_pct: f64,
    /// Number of samples retained after outlier rejection.
    samples: usize,
    outliers_rejected: usize,
}

impl SampleStats {
    /// Compute statistics with Tukey-fence outlier rejection
    /// (`[q1 − 1.5·IQR, q3 + 1.5·IQR]`).  With fewer than five samples the
    /// quartiles are meaningless, so rejection is skipped.
    fn from_durations(durations: &[Duration]) -> Self {
        let mut ns: Vec<f64> = durations.iter().map(|d| d.as_nanos() as f64).collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let total = ns.len();
        let retained: Vec<f64> = if total >= 5 {
            let q1 = ns[total / 4];
            let q3 = ns[(3 * total) / 4];
            let iqr = q3 - q1;
            let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
            ns.iter().copied().filter(|&v| v >= lo && v <= hi).collect()
        } else {
            ns.clone()
        };
        let n = retained.len();
        let mean = retained.iter().sum::<f64>() / n as f64;
        let var = retained
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n as f64;
        let stddev = var.sqrt();
        SampleStats {
            median_ns: retained[n / 2],
            min_ns: retained[0],
            max_ns: retained[n - 1],
            mean_ns: mean,
            stddev_ns: stddev,
            cv_pct: if mean > 0.0 {
                100.0 * stddev / mean
            } else {
                0.0
            },
            samples: n,
            outliers_rejected: total - n,
        }
    }
}

/// Minimal JSON string escaping (bench labels are plain ASCII identifiers, but
/// quotes and backslashes must not corrupt the line format).
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Append one benchmark's statistics as a JSON line to `path`
/// (the `BENCH_results.json` accumulated across bench binaries by CI).
fn append_json_line(
    path: &std::path::Path,
    label: &str,
    stats: &SampleStats,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"name\":\"{}\",\"median_ns\":{:.0},\"min_ns\":{:.0},\"max_ns\":{:.0},\"mean_ns\":{:.0},\"stddev_ns\":{:.0},\"cv_pct\":{:.2},\"samples\":{},\"outliers_rejected\":{}}}",
        escape_json(label),
        stats.median_ns,
        stats.min_ns,
        stats.max_ns,
        stats.mean_ns,
        stats.stddev_ns,
        stats.cv_pct,
        stats.samples,
        stats.outliers_rejected,
    )
}

fn format_throughput(throughput: Throughput, median: Duration) -> String {
    let secs = median.as_secs_f64().max(1e-12);
    let (count, unit) = match throughput {
        Throughput::Elements(n) => (n, "elem"),
        Throughput::Bytes(n) => (n, "B"),
    };
    let per_sec = count as f64 / secs;
    let (scaled, prefix) = if per_sec >= 1e9 {
        (per_sec / 1e9, "G")
    } else if per_sec >= 1e6 {
        (per_sec / 1e6, "M")
    } else if per_sec >= 1e3 {
        (per_sec / 1e3, "K")
    } else {
        (per_sec, "")
    };
    format!("  {scaled:.2} {prefix}{unit}/s")
}

/// Declare a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion(smoke_only: bool) -> Criterion {
        Criterion {
            sample_size: 30,
            smoke_only,
            // Keep unit tests fast: a near-zero warm-up still exercises the phase.
            warm_up_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn smoke_mode_runs_single_iteration() {
        let mut c = test_criterion(true);
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_honors_sample_size_plus_warm_up() {
        let mut c = test_criterion(false);
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(7), &3, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        // 5 recorded samples plus at least one unrecorded warm-up call.
        assert!(runs >= 18, "expected >= 5 samples + 1 warm-up, got {runs}");
        assert_eq!(runs % 3, 0);
    }

    #[test]
    fn warm_up_calls_are_not_recorded() {
        let mut total_calls = 0usize;
        let mut recorded = 0usize;
        run_one(
            "w",
            4,
            false,
            Duration::from_millis(1),
            None,
            &mut |b: &mut Bencher| {
                b.iter(|| total_calls += 1);
                recorded = b.durations.len();
            },
        );
        assert_eq!(recorded, 4, "exactly sample_size samples are recorded");
        assert!(total_calls > 4, "warm-up must add unrecorded calls");
    }

    #[test]
    fn throughput_formats_scaled_rates() {
        let s = format_throughput(Throughput::Elements(49), Duration::from_millis(7));
        assert_eq!(s, "  7.00 Kelem/s");
        let s = format_throughput(Throughput::Bytes(2_000_000), Duration::from_secs(1));
        assert_eq!(s, "  2.00 MB/s");
        let s = format_throughput(Throughput::Elements(3), Duration::from_secs(1));
        assert_eq!(s, "  3.00 elem/s");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn outlier_rejection_drops_stray_samples() {
        // Nine tight samples around 100 ns plus one 10 µs straggler: the
        // straggler falls outside the Tukey fences and must not skew the max.
        let mut durations: Vec<Duration> = (0..9).map(|i| Duration::from_nanos(100 + i)).collect();
        durations.push(Duration::from_nanos(10_000));
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.outliers_rejected, 1);
        assert_eq!(stats.samples, 9);
        assert!(stats.max_ns < 200.0, "straggler retained: {}", stats.max_ns);
        assert!((stats.median_ns - 104.0).abs() < 2.0);
    }

    #[test]
    fn outlier_rejection_skipped_for_tiny_sample_counts() {
        let durations = vec![
            Duration::from_nanos(100),
            Duration::from_nanos(10_000),
            Duration::from_nanos(110),
        ];
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.outliers_rejected, 0);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.max_ns, 10_000.0);
    }

    #[test]
    fn variance_of_constant_samples_is_zero() {
        let durations = vec![Duration::from_nanos(500); 8];
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.stddev_ns, 0.0);
        assert_eq!(stats.cv_pct, 0.0);
        assert_eq!(stats.mean_ns, 500.0);
    }

    #[test]
    fn json_line_is_well_formed_and_appends() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_json_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let stats = SampleStats::from_durations(&[Duration::from_nanos(1_500); 6]);
        append_json_line(&path, "group/bench \"a\\b\"", &stats).unwrap();
        append_json_line(&path, "group/other", &stats).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"group/bench \\\"a\\\\b\\\"\""));
        assert!(lines[0].contains("\"median_ns\":1500"));
        assert!(lines[1].starts_with('{') && lines[1].ends_with('}'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escape_json_handles_control_and_quote_chars() {
        assert_eq!(escape_json("plain/name_1"), "plain/name_1");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }
}
