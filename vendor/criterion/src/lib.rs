//! Offline shim of `criterion`.
//!
//! Implements the criterion API surface used by the CORGI benches
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::throughput`],
//! [`BenchmarkGroup::warm_up_time`], [`BenchmarkId`], [`Throughput`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`]) as a
//! plain wall-clock timing harness: each benchmark first runs a **warm-up
//! phase** (default 500 ms — caches, allocator and frequency scaling settle
//! before anything is recorded), then `sample_size` timed samples, and reports
//! min / median / max to stdout plus **throughput** (elements or bytes per
//! second, from the median) when the group declares one.
//!
//! When the binary is *not* invoked by `cargo bench` (no `--bench` flag, e.g.
//! under `cargo test`, which runs `harness = false` bench targets in test
//! mode) every benchmark executes exactly one iteration as a smoke test, so
//! the test suite stays fast.  Setting the environment variable
//! `CORGI_BENCH_SMOKE=1` forces the same single-iteration smoke mode even
//! under `cargo bench` — CI uses this to exercise every bench body cheaply.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let forced_smoke = std::env::var_os("CORGI_BENCH_SMOKE").is_some_and(|v| v != "0");
        Criterion {
            sample_size: 30,
            smoke_only: !bench_mode || forced_smoke,
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the default warm-up duration for subsequent benchmarks.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.smoke_only {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            warm_up_time: None,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.smoke_only { 1 } else { self.sample_size };
        run_one(
            &id.to_string(),
            samples,
            self.smoke_only,
            self.warm_up_time,
            None,
            &mut f,
        );
    }
}

/// Quantity processed per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Override the warm-up duration for this group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = Some(duration);
        self
    }

    /// Declare how much work one iteration performs; enables the
    /// elements/bytes-per-second column in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.criterion.smoke_only {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            samples,
            self.criterion.smoke_only,
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.throughput,
            &mut f,
        );
    }

    /// Benchmark a closure over an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finish the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    recording: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per configured iteration (warm-up calls
    /// run the closure without recording).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            if self.recording {
                self.durations.push(start.elapsed());
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    smoke_only: bool,
    warm_up: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if smoke_only {
        let mut bencher = Bencher {
            samples,
            recording: true,
            durations: Vec::new(),
        };
        f(&mut bencher);
        return;
    }

    // Warm-up phase: run the routine unrecorded until the budget is spent
    // (at least once), so the timed samples see warm caches and allocator.
    let warm_up_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            samples: 1,
            recording: false,
            durations: Vec::new(),
        };
        f(&mut bencher);
        if warm_up_start.elapsed() >= warm_up {
            break;
        }
    }

    let mut bencher = Bencher {
        samples,
        recording: true,
        durations: Vec::new(),
    };
    f(&mut bencher);
    let mut durations = bencher.durations;
    if durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    durations.sort();
    let median = durations[durations.len() / 2];
    let rate = throughput
        .map(|t| format_throughput(t, median))
        .unwrap_or_default();
    println!(
        "{label:<50} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples){rate}",
        durations[0],
        median,
        durations[durations.len() - 1],
        durations.len(),
    );
}

fn format_throughput(throughput: Throughput, median: Duration) -> String {
    let secs = median.as_secs_f64().max(1e-12);
    let (count, unit) = match throughput {
        Throughput::Elements(n) => (n, "elem"),
        Throughput::Bytes(n) => (n, "B"),
    };
    let per_sec = count as f64 / secs;
    let (scaled, prefix) = if per_sec >= 1e9 {
        (per_sec / 1e9, "G")
    } else if per_sec >= 1e6 {
        (per_sec / 1e6, "M")
    } else if per_sec >= 1e3 {
        (per_sec / 1e3, "K")
    } else {
        (per_sec, "")
    };
    format!("  {scaled:.2} {prefix}{unit}/s")
}

/// Declare a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion(smoke_only: bool) -> Criterion {
        Criterion {
            sample_size: 30,
            smoke_only,
            // Keep unit tests fast: a near-zero warm-up still exercises the phase.
            warm_up_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn smoke_mode_runs_single_iteration() {
        let mut c = test_criterion(true);
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_honors_sample_size_plus_warm_up() {
        let mut c = test_criterion(false);
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(7), &3, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        // 5 recorded samples plus at least one unrecorded warm-up call.
        assert!(runs >= 18, "expected >= 5 samples + 1 warm-up, got {runs}");
        assert_eq!(runs % 3, 0);
    }

    #[test]
    fn warm_up_calls_are_not_recorded() {
        let mut total_calls = 0usize;
        let mut recorded = 0usize;
        run_one(
            "w",
            4,
            false,
            Duration::from_millis(1),
            None,
            &mut |b: &mut Bencher| {
                b.iter(|| total_calls += 1);
                recorded = b.durations.len();
            },
        );
        assert_eq!(recorded, 4, "exactly sample_size samples are recorded");
        assert!(total_calls > 4, "warm-up must add unrecorded calls");
    }

    #[test]
    fn throughput_formats_scaled_rates() {
        let s = format_throughput(Throughput::Elements(49), Duration::from_millis(7));
        assert_eq!(s, "  7.00 Kelem/s");
        let s = format_throughput(Throughput::Bytes(2_000_000), Duration::from_secs(1));
        assert_eq!(s, "  2.00 MB/s");
        let s = format_throughput(Throughput::Elements(3), Duration::from_secs(1));
        assert_eq!(s, "  3.00 elem/s");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
