//! Offline shim of `criterion`.
//!
//! Implements the criterion API surface used by the CORGI benches
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::throughput`],
//! [`BenchmarkGroup::warm_up_time`], [`BenchmarkId`], [`Throughput`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`]) as a
//! plain wall-clock timing harness: each benchmark first runs a **warm-up
//! phase** (default 500 ms — caches, allocator and frequency scaling settle
//! before anything is recorded), then `sample_size` timed samples, and reports
//! min / median / max to stdout plus **throughput** (elements or bytes per
//! second, from the median) when the group declares one.
//!
//! Samples go through **outlier rejection** before reporting: Tukey fences at
//! `[q1 − 1.5·IQR, q3 + 1.5·IQR]` drop the stray samples a busy machine
//! produces (a page fault, a scheduler preemption), and the report carries the
//! retained-sample **variance** — standard deviation and coefficient of
//! variation — so perf PRs can be gated on low-noise numbers.
//!
//! When the environment variable `CORGI_BENCH_JSON` names a file, every
//! benchmark (in real bench mode) **appends one JSON object per line** with its
//! post-rejection statistics (`name`, `median_ns`, `min_ns`, `max_ns`,
//! `mean_ns`, `stddev_ns`, `cv_pct`, `samples`, `outliers_rejected`, and the
//! tail percentiles `p50_ns` / `p99_ns` / `p999_ns`).  CI collects these
//! lines as `BENCH_results.json` and feeds them to the `perf_gate` binary,
//! which fails the build when a named bench regresses against the checked-in
//! `BENCH_baseline.json` — gating on `median_ns` by default, or on whichever
//! field a baseline entry names in `gate_field`.
//!
//! Beyond per-sample timing, the shim offers an HDR-style [`Histogram`] for
//! harnesses that record thousands to millions of latencies (e.g. the
//! `loadgen` open-loop driver): log-bucketed at ≤ ~1.6% relative error with a
//! fixed ~30 KiB footprint, reported through the same JSONL path by
//! [`report_histogram`].
//!
//! When the binary is *not* invoked by `cargo bench` (no `--bench` flag, e.g.
//! under `cargo test`, which runs `harness = false` bench targets in test
//! mode) every benchmark executes exactly one iteration as a smoke test, so
//! the test suite stays fast.  Setting the environment variable
//! `CORGI_BENCH_SMOKE=1` forces the same single-iteration smoke mode even
//! under `cargo bench` — CI uses this to exercise every bench body cheaply.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let forced_smoke = std::env::var_os("CORGI_BENCH_SMOKE").is_some_and(|v| v != "0");
        Criterion {
            sample_size: 30,
            smoke_only: !bench_mode || forced_smoke,
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the default warm-up duration for subsequent benchmarks.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.smoke_only {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            warm_up_time: None,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.smoke_only { 1 } else { self.sample_size };
        run_one(
            &id.to_string(),
            samples,
            self.smoke_only,
            self.warm_up_time,
            None,
            &mut f,
        );
    }
}

/// Quantity processed per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Override the warm-up duration for this group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = Some(duration);
        self
    }

    /// Declare how much work one iteration performs; enables the
    /// elements/bytes-per-second column in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = if self.criterion.smoke_only {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            samples,
            self.criterion.smoke_only,
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.throughput,
            &mut f,
        );
    }

    /// Benchmark a closure over an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finish the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    recording: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per configured iteration (warm-up calls
    /// run the closure without recording).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            if self.recording {
                self.durations.push(start.elapsed());
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    smoke_only: bool,
    warm_up: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if smoke_only {
        let mut bencher = Bencher {
            samples,
            recording: true,
            durations: Vec::new(),
        };
        f(&mut bencher);
        return;
    }

    // Warm-up phase: run the routine unrecorded until the budget is spent
    // (at least once), so the timed samples see warm caches and allocator.
    let warm_up_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            samples: 1,
            recording: false,
            durations: Vec::new(),
        };
        f(&mut bencher);
        if warm_up_start.elapsed() >= warm_up {
            break;
        }
    }

    let mut bencher = Bencher {
        samples,
        recording: true,
        durations: Vec::new(),
    };
    f(&mut bencher);
    let durations = bencher.durations;
    if durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let stats = SampleStats::from_durations(&durations);
    let rate = throughput
        .map(|t| format_throughput(t, Duration::from_nanos(stats.median_ns as u64)))
        .unwrap_or_default();
    let outliers = if stats.outliers_rejected > 0 {
        format!(", {} outliers rejected", stats.outliers_rejected)
    } else {
        String::new()
    };
    println!(
        "{label:<50} min {:>12?}  median {:>12?}  max {:>12?}  σ {:>10?} (cv {:>5.1}%)  ({} samples{outliers}){rate}",
        Duration::from_nanos(stats.min_ns as u64),
        Duration::from_nanos(stats.median_ns as u64),
        Duration::from_nanos(stats.max_ns as u64),
        Duration::from_nanos(stats.stddev_ns as u64),
        stats.cv_pct,
        stats.samples,
    );
    if let Some(path) = std::env::var_os("CORGI_BENCH_JSON") {
        if let Err(err) = append_json_line(std::path::Path::new(&path), label, &stats) {
            eprintln!("criterion shim: could not append to {path:?}: {err}");
        }
    }
}

/// Post-rejection summary statistics of one benchmark's samples.
#[derive(Debug, Clone, PartialEq)]
struct SampleStats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    mean_ns: f64,
    stddev_ns: f64,
    /// Coefficient of variation (σ / mean) in percent.
    cv_pct: f64,
    /// Tail percentiles of the retained samples (p50 equals the median).
    p50_ns: f64,
    /// 99th percentile of the retained samples.
    p99_ns: f64,
    /// 99.9th percentile of the retained samples (equals the max until the
    /// sample count reaches the thousands).
    p999_ns: f64,
    /// Number of samples retained after outlier rejection.
    samples: usize,
    outliers_rejected: usize,
}

impl SampleStats {
    /// Compute statistics with Tukey-fence outlier rejection
    /// (`[q1 − 1.5·IQR, q3 + 1.5·IQR]`).  With fewer than five samples the
    /// quartiles are meaningless, so rejection is skipped.
    fn from_durations(durations: &[Duration]) -> Self {
        let mut ns: Vec<f64> = durations.iter().map(|d| d.as_nanos() as f64).collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let total = ns.len();
        let retained: Vec<f64> = if total >= 5 {
            let q1 = ns[total / 4];
            let q3 = ns[(3 * total) / 4];
            let iqr = q3 - q1;
            let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
            ns.iter().copied().filter(|&v| v >= lo && v <= hi).collect()
        } else {
            ns.clone()
        };
        let n = retained.len();
        let mean = retained.iter().sum::<f64>() / n as f64;
        let var = retained
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n as f64;
        let stddev = var.sqrt();
        // Nearest-rank percentile over the sorted retained samples.
        let at = |q: f64| retained[(((n - 1) as f64) * q).round() as usize];
        SampleStats {
            median_ns: retained[n / 2],
            min_ns: retained[0],
            max_ns: retained[n - 1],
            mean_ns: mean,
            stddev_ns: stddev,
            p50_ns: at(0.50),
            p99_ns: at(0.99),
            p999_ns: at(0.999),
            cv_pct: if mean > 0.0 {
                100.0 * stddev / mean
            } else {
                0.0
            },
            samples: n,
            outliers_rejected: total - n,
        }
    }
}

/// Minimal JSON string escaping (bench labels are plain ASCII identifiers, but
/// quotes and backslashes must not corrupt the line format).
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Append one benchmark's statistics as a JSON line to `path`
/// (the `BENCH_results.json` accumulated across bench binaries by CI).
fn append_json_line(
    path: &std::path::Path,
    label: &str,
    stats: &SampleStats,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"name\":\"{}\",\"median_ns\":{:.0},\"min_ns\":{:.0},\"max_ns\":{:.0},\"mean_ns\":{:.0},\"stddev_ns\":{:.0},\"cv_pct\":{:.2},\"p50_ns\":{:.0},\"p99_ns\":{:.0},\"p999_ns\":{:.0},\"samples\":{},\"outliers_rejected\":{}}}",
        escape_json(label),
        stats.median_ns,
        stats.min_ns,
        stats.max_ns,
        stats.mean_ns,
        stats.stddev_ns,
        stats.cv_pct,
        stats.p50_ns,
        stats.p99_ns,
        stats.p999_ns,
        stats.samples,
        stats.outliers_rejected,
    )
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of two,
/// bounding the relative quantization error at 1/64 ≈ 1.6%.
const HIST_SUB_BITS: u32 = 6;
/// Bucket count covering every `u64` nanosecond value at that resolution.
const HIST_BUCKETS: usize = ((64 - HIST_SUB_BITS) as usize + 1) << HIST_SUB_BITS;

/// An HDR-style log-bucketed latency histogram.
///
/// Values (nanoseconds) below 2^6 = 64 are recorded exactly; above that, each
/// power-of-two range splits into 64 linear sub-buckets, so any recorded
/// value is reported within ~1.6% of its true magnitude.  The footprint is a
/// fixed ~30 KiB regardless of sample count, which is what lets an open-loop
/// load run record millions of latencies without per-sample allocation.
///
/// ```
/// use criterion::Histogram;
/// let mut h = Histogram::new();
/// for ns in [250u64, 300, 400, 90_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 250 && h.percentile(50.0) <= 310);
/// assert!(h.percentile(99.9) >= 90_000);
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        if ns < (1 << HIST_SUB_BITS) {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros();
        let shift = exp - HIST_SUB_BITS;
        let sub = ((ns >> shift) as usize) - (1 << HIST_SUB_BITS);
        (((exp - HIST_SUB_BITS + 1) as usize) << HIST_SUB_BITS) + sub
    }

    /// Highest value a bucket represents — percentiles read this bound, so
    /// quantization always rounds *up* (never under-reports a latency).
    fn bucket_high(index: usize) -> u64 {
        if index < (1 << HIST_SUB_BITS) {
            return index as u64;
        }
        let exp = (index >> HIST_SUB_BITS) as u32 + HIST_SUB_BITS - 1;
        let sub = (index & ((1 << HIST_SUB_BITS) - 1)) as u64;
        let shift = exp - HIST_SUB_BITS;
        ((sub + (1 << HIST_SUB_BITS) + 1) << shift) - 1
    }

    /// Record one latency in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one latency as a [`Duration`] (saturating at `u64` nanoseconds).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value, exact (not quantized).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of the recorded values in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Value at the given percentile (0–100), e.g. `percentile(99.9)`.
    ///
    /// Reported from the containing bucket's upper bound, so the answer is
    /// within +1.6% of the true order statistic and never below it.  Returns
    /// 0 on an empty histogram; the exact [`Histogram::max_ns`] caps the
    /// result.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_high(index).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Fold another histogram's recordings into this one — how per-connection
    /// worker histograms combine into one run-level distribution.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .field("p999_ns", &self.percentile(99.9))
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Report a recorded [`Histogram`] the way `run_one` reports sample timings:
/// a human-readable percentile line on stdout, plus one JSONL record appended
/// to the `CORGI_BENCH_JSON` file when that variable names one.
///
/// The record carries `name`, `median_ns` (= p50, so median-based tooling
/// keeps working), `p50_ns`, `p99_ns`, `p999_ns`, `max_ns`, `mean_ns` and
/// `samples`, then any caller-supplied `extras` pairs (e.g. a goodput rate),
/// and finally `"gate_field"` when given — naming the field `perf_gate`
/// should compare for this entry instead of `median_ns`.
pub fn report_histogram(
    label: &str,
    histogram: &Histogram,
    extras: &[(&str, f64)],
    gate_field: Option<&str>,
) {
    let (p50, p99, p999) = (
        histogram.percentile(50.0),
        histogram.percentile(99.0),
        histogram.percentile(99.9),
    );
    println!(
        "{label:<50} p50 {:>12?}  p99 {:>12?}  p999 {:>12?}  max {:>12?}  ({} samples)",
        Duration::from_nanos(p50),
        Duration::from_nanos(p99),
        Duration::from_nanos(p999),
        Duration::from_nanos(histogram.max_ns()),
        histogram.count(),
    );
    if let Some(path) = std::env::var_os("CORGI_BENCH_JSON") {
        let mut line = format!(
            "{{\"name\":\"{}\",\"median_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"mean_ns\":{:.0},\"samples\":{}",
            escape_json(label),
            p50,
            p50,
            p99,
            p999,
            histogram.max_ns(),
            histogram.mean_ns(),
            histogram.count(),
        );
        for (key, value) in extras {
            line.push_str(&format!(",\"{}\":{:.3}", escape_json(key), value));
        }
        if let Some(field) = gate_field {
            line.push_str(&format!(",\"gate_field\":\"{}\"", escape_json(field)));
        }
        line.push('}');
        let result = (|| -> std::io::Result<()> {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            writeln!(file, "{line}")
        })();
        if let Err(err) = result {
            eprintln!("criterion shim: could not append to {path:?}: {err}");
        }
    }
}

fn format_throughput(throughput: Throughput, median: Duration) -> String {
    let secs = median.as_secs_f64().max(1e-12);
    let (count, unit) = match throughput {
        Throughput::Elements(n) => (n, "elem"),
        Throughput::Bytes(n) => (n, "B"),
    };
    let per_sec = count as f64 / secs;
    let (scaled, prefix) = if per_sec >= 1e9 {
        (per_sec / 1e9, "G")
    } else if per_sec >= 1e6 {
        (per_sec / 1e6, "M")
    } else if per_sec >= 1e3 {
        (per_sec / 1e3, "K")
    } else {
        (per_sec, "")
    };
    format!("  {scaled:.2} {prefix}{unit}/s")
}

/// Declare a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion(smoke_only: bool) -> Criterion {
        Criterion {
            sample_size: 30,
            smoke_only,
            // Keep unit tests fast: a near-zero warm-up still exercises the phase.
            warm_up_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn smoke_mode_runs_single_iteration() {
        let mut c = test_criterion(true);
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_honors_sample_size_plus_warm_up() {
        let mut c = test_criterion(false);
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(7), &3, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        // 5 recorded samples plus at least one unrecorded warm-up call.
        assert!(runs >= 18, "expected >= 5 samples + 1 warm-up, got {runs}");
        assert_eq!(runs % 3, 0);
    }

    #[test]
    fn warm_up_calls_are_not_recorded() {
        let mut total_calls = 0usize;
        let mut recorded = 0usize;
        run_one(
            "w",
            4,
            false,
            Duration::from_millis(1),
            None,
            &mut |b: &mut Bencher| {
                b.iter(|| total_calls += 1);
                recorded = b.durations.len();
            },
        );
        assert_eq!(recorded, 4, "exactly sample_size samples are recorded");
        assert!(total_calls > 4, "warm-up must add unrecorded calls");
    }

    #[test]
    fn throughput_formats_scaled_rates() {
        let s = format_throughput(Throughput::Elements(49), Duration::from_millis(7));
        assert_eq!(s, "  7.00 Kelem/s");
        let s = format_throughput(Throughput::Bytes(2_000_000), Duration::from_secs(1));
        assert_eq!(s, "  2.00 MB/s");
        let s = format_throughput(Throughput::Elements(3), Duration::from_secs(1));
        assert_eq!(s, "  3.00 elem/s");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn outlier_rejection_drops_stray_samples() {
        // Nine tight samples around 100 ns plus one 10 µs straggler: the
        // straggler falls outside the Tukey fences and must not skew the max.
        let mut durations: Vec<Duration> = (0..9).map(|i| Duration::from_nanos(100 + i)).collect();
        durations.push(Duration::from_nanos(10_000));
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.outliers_rejected, 1);
        assert_eq!(stats.samples, 9);
        assert!(stats.max_ns < 200.0, "straggler retained: {}", stats.max_ns);
        assert!((stats.median_ns - 104.0).abs() < 2.0);
    }

    #[test]
    fn outlier_rejection_skipped_for_tiny_sample_counts() {
        let durations = vec![
            Duration::from_nanos(100),
            Duration::from_nanos(10_000),
            Duration::from_nanos(110),
        ];
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.outliers_rejected, 0);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.max_ns, 10_000.0);
    }

    #[test]
    fn variance_of_constant_samples_is_zero() {
        let durations = vec![Duration::from_nanos(500); 8];
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.stddev_ns, 0.0);
        assert_eq!(stats.cv_pct, 0.0);
        assert_eq!(stats.mean_ns, 500.0);
    }

    #[test]
    fn json_line_is_well_formed_and_appends() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_json_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let stats = SampleStats::from_durations(&[Duration::from_nanos(1_500); 6]);
        append_json_line(&path, "group/bench \"a\\b\"", &stats).unwrap();
        append_json_line(&path, "group/other", &stats).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"group/bench \\\"a\\\\b\\\"\""));
        assert!(lines[0].contains("\"median_ns\":1500"));
        assert!(lines[1].starts_with('{') && lines[1].ends_with('}'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escape_json_handles_control_and_quote_chars() {
        assert_eq!(escape_json("plain/name_1"), "plain/name_1");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }

    #[test]
    fn sample_stats_report_tail_percentiles() {
        // 0..1000 ns with no outliers: nearest-rank percentiles are exact.
        let durations: Vec<Duration> = (0..=1000).map(Duration::from_nanos).collect();
        let stats = SampleStats::from_durations(&durations);
        assert_eq!(stats.p50_ns, 500.0);
        assert_eq!(stats.p99_ns, 990.0);
        assert_eq!(stats.p999_ns, 999.0);
        assert_eq!(stats.p50_ns, stats.median_ns);
    }

    #[test]
    fn histogram_is_exact_below_the_sub_bucket_floor() {
        let mut h = Histogram::new();
        for ns in 0u64..64 {
            h.record(ns);
        }
        assert_eq!(h.count(), 64);
        // Every value below 64 lands in its own bucket: percentiles are exact.
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.percentile(100.0), 63);
    }

    #[test]
    fn histogram_quantization_error_stays_under_two_percent() {
        // Single-value histograms across six decades: the reported p50 (the
        // bucket's upper bound, capped at the exact max) must sit within
        // [value, value * 1.016].
        for ns in [
            100u64,
            1_234,
            56_789,
            987_654,
            12_345_678,
            999_999_999,
            10u64.pow(12) + 7,
        ] {
            let mut h = Histogram::new();
            h.record(ns);
            let p50 = h.percentile(50.0);
            assert!(p50 >= ns, "{p50} under-reports {ns}");
            assert!(
                p50 as f64 <= ns as f64 * 1.016,
                "{p50} overshoots {ns} by more than 1.6%"
            );
        }
    }

    #[test]
    fn histogram_percentiles_order_and_cap_at_the_exact_max() {
        let mut h = Histogram::new();
        // 999 fast requests and one 50 ms straggler.
        for _ in 0..999 {
            h.record(1_000);
        }
        h.record(50_000_000);
        let (p50, p99, p999) = (h.percentile(50.0), h.percentile(99.0), h.percentile(99.9));
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p50 < 1_100, "p50 is unaffected by the straggler: {p50}");
        assert!(p99 < 1_100, "p99 is unaffected by the straggler: {p99}");
        assert_eq!(h.percentile(100.0), 50_000_000, "exact max caps the tail");
        assert_eq!(h.max_ns(), 50_000_000);
    }

    #[test]
    fn histogram_merge_combines_worker_recordings() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..100 {
            a.record(1_000);
            b.record(100_000);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert!(merged.percentile(25.0) < 2_000);
        assert!(merged.percentile(75.0) > 90_000);
        assert_eq!(merged.max_ns(), 100_000);
        let mean = merged.mean_ns();
        assert!((mean - 50_500.0).abs() < 1.0, "mean across merges: {mean}");
    }

    #[test]
    fn histogram_empty_and_duration_recording() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert!(h.percentile(50.0) >= 3_000);
    }

    #[test]
    fn report_histogram_appends_extras_and_gate_field() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_hist_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        // The env var is process-global: restore whatever was there before.
        let saved = std::env::var_os("CORGI_BENCH_JSON");
        std::env::set_var("CORGI_BENCH_JSON", &path);
        let mut h = Histogram::new();
        for ns in [1_000u64, 2_000, 3_000] {
            h.record(ns);
        }
        report_histogram(
            "loadgen/test",
            &h,
            &[("goodput_rps", 123.456)],
            Some("p99_ns"),
        );
        match saved {
            Some(v) => std::env::set_var("CORGI_BENCH_JSON", v),
            None => std::env::remove_var("CORGI_BENCH_JSON"),
        }
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let line = body.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"name\":\"loadgen/test\""));
        assert!(line.contains("\"p99_ns\":"));
        assert!(line.contains("\"p999_ns\":"));
        assert!(line.contains("\"samples\":3"));
        assert!(line.contains("\"goodput_rps\":123.456"));
        assert!(line.contains("\"gate_field\":\"p99_ns\""));
        // median_ns mirrors p50 so median-based tooling keeps working.
        assert!(line.contains("\"median_ns\":"));
    }
}
