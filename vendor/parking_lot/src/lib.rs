//! Offline shim of `parking_lot`, backed by `std::sync`.
//!
//! The build environment cannot fetch crates.io dependencies, so this vendored
//! crate provides `parking_lot`'s panic-free locking API (`lock()` returning a
//! guard directly) on top of the standard library locks.  Poisoning is handled
//! the way `parking_lot` behaves: a poisoned lock is simply re-entered, because
//! `parking_lot` has no poisoning at all.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that hands out its guard without a `Result`, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (as `parking_lot` has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
