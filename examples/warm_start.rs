//! Cache warming and the cold/warm latency cliff.
//!
//! The serving cache is keyed by `(privacy_level, δ)` — a key space small
//! enough to precompute entirely.  This example starts the event-driven TCP
//! server on loopback, measures a cold request (a full Algorithm-3 forest
//! generation), then warms the rest of the key grid over the wire with a
//! `Warm` frame and shows the steady state: every request a cache hit, no LP
//! solve anywhere on the path.
//!
//! Run with: `cargo run --release --example warm_start`

use corgi::core::LocationTree;
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::MatrixRequest;
use corgi::framework::{
    CachingService, ForestGenerator, MatrixService, ServerConfig, TcpServer, TcpTransport,
    TransportConfig, WarmRequest,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server-side stack: generator → bounded LRU cache, behind the reactor.
    let grid = HexGrid::new(HexGridConfig::san_francisco())?;
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let caching = Arc::new(CachingService::with_defaults(ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .build(),
    )));
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&caching) as Arc<dyn MatrixService>,
        TransportConfig::default(),
    )?;
    let transport = TcpTransport::connect(server.local_addr())?;
    println!(
        "Event-driven server on {} (protocol {}, {} codec)\n",
        server.local_addr(),
        transport.server_version(),
        transport.codec()
    );

    // Cold: the first request for a key pays for the whole privacy forest.
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let start = Instant::now();
    let forest = transport.privacy_forest(request)?;
    let cold = start.elapsed();
    println!(
        "Cold request  (level 1, δ 0): {cold:>12.3?}  ({} subtree LPs solved)",
        forest.entries.len()
    );
    println!("Cold cache stats: {:?}\n", caching.cache_stats());

    // Warm the remaining grid over the wire: level 1, δ ∈ 0..=2.
    let plan = WarmRequest::level(1, 2);
    let report = transport.warm(&plan)?;
    println!(
        "Warmed {}/{} keys in {} ms (failures: {})\n",
        report.warmed,
        report.requested,
        report.elapsed_ms,
        report.failures.len()
    );

    // Steady state: the whole grid is resident; requests never touch the LP
    // solver again.
    for delta in 0..=2usize {
        let request = MatrixRequest {
            privacy_level: 1,
            delta,
        };
        let start = Instant::now();
        let forest = transport.privacy_forest(request)?;
        let warm = start.elapsed();
        println!(
            "Warm request  (level 1, δ {delta}): {warm:>12.3?}  ({} entries, cache hit, {:.0}x faster than cold)",
            forest.entries.len(),
            cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
        );
    }
    let stats = caching
        .cache_stats()
        .expect("the caching layer reports cache stats");
    println!("\nWarmed cache stats: {stats:?}");
    println!(
        "Steady state: {} hits over {} resident forests — the repeated-request path performs no LP solves.",
        stats.hits, stats.entries
    );

    // Connection-level view of the same traffic: frames and bytes that
    // crossed the wire, the codec each side negotiated, and whether any
    // backpressure or transport errors occurred.
    let client_stats = transport.stats();
    let server_stats = server.stats();
    println!("\nClient transport stats: {client_stats:?}");
    println!("Server transport stats: {server_stats:?}");
    println!(
        "The {} codec moved {:.1} KiB in / {:.1} KiB out over {} frames with {} backpressure stalls.",
        transport.codec(),
        client_stats.bytes_in as f64 / 1024.0,
        client_stats.bytes_out as f64 / 1024.0,
        client_stats.frames_in + client_stats.frames_out,
        server_stats.backpressure_stalls,
    );
    server.shutdown();
    Ok(())
}
