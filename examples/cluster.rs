//! Cluster serving: 3 shards, rendezvous routing, peer replication, HMAC
//! frame authentication — all over loopback.
//!
//! Boots three independent serving stacks, each wrapped as
//! `CachingService(ReplicatingService(ForestGenerator))` and bound behind its
//! own `TcpServer` with a shared cluster key, then:
//!
//! 1. wires the shards into a full replication mesh (every cold-miss solve is
//!    pushed to both peers as a fire-and-forget `WarmPush` frame);
//! 2. routes a request through a [`ShardRouter`], which rendezvous-hashes the
//!    `(privacy_level, δ)` cache key to its owning shard — the cold miss
//!    solves there once;
//! 3. waits for the push to land and reads every shard's counters *over the
//!    wire* (a `Stats` frame returning transport + cache + cluster stats),
//!    showing the key resident on the peers with **zero** LP solves of their
//!    own;
//! 4. asks a peer shard directly for the same key — a pure cache hit;
//! 5. shows that an unkeyed client is turned away with a structured
//!    `Unauthenticated` rejection, not a silent desync;
//! 6. exercises the protocol 1.5 resilience frames: a `Ping` round trip (the
//!    liveness probe behind the peer-health state machine) and a
//!    `Digest`/`DigestReply` anti-entropy pull, re-warming a cold shard from
//!    its peers without a single LP solve.
//!
//! Run with: `cargo run --release --example cluster`
//!
//! [`ShardRouter`]: corgi::framework::ShardRouter

use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::MatrixRequest;
use corgi::framework::{
    rendezvous_rank, CachingService, ClientConfig, ClusterKey, ForestGenerator, MatrixService,
    ReplicatingService, ReplicationConfig, Replicator, RouterConfig, ServerConfig, ShardRouter,
    TcpServer, TcpTransport, TransportConfig,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared secret for the whole tier: servers, peer links and clients.
    // (Production deployments set CORGI_CLUSTER_KEY instead; every config
    // below defaults to that env var.)
    let key = ClusterKey::from_secret(b"example-cluster-secret");

    // All shards serve the same grid and prior, exactly as all replicas of
    // one deployment would.
    let grid = HexGrid::new(HexGridConfig::san_francisco())?;
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let config = ServerConfig::builder()
        .robust_iterations(1)
        .targets_per_subtree(3)
        .worker_threads(2)
        .build();

    // Boot the three shards.  The replicator is handed both to the service
    // stack (which offers every cold-miss solve to it) and to the transport
    // (whose reactor flushes the queues to the peers).
    let mut servers = Vec::new();
    let mut replicators = Vec::new();
    for _ in 0..3 {
        let replicator = Replicator::new(ReplicationConfig {
            cluster_key: Some(key.clone()),
            ..ReplicationConfig::default()
        });
        let service = Arc::new(CachingService::with_defaults(ReplicatingService::new(
            ForestGenerator::new(
                corgi::core::LocationTree::new(grid.clone()),
                prior.clone(),
                config,
            ),
            Arc::clone(&replicator),
        )));
        let server = TcpServer::bind(
            "127.0.0.1:0",
            service as Arc<dyn MatrixService>,
            TransportConfig {
                cluster_key: Some(key.clone()),
                replication: Some(Arc::clone(&replicator)),
                // Payload pushes carry a whole encoded forest; raise the
                // inbound bound above the request-sized default.
                max_inbound_frame: 8 * 1024 * 1024,
                ..TransportConfig::default()
            },
        )?;
        replicators.push(replicator);
        servers.push(server);
    }
    let endpoints: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    // Full mesh: ports are only known after bind, so peers are added now.
    for (index, replicator) in replicators.iter().enumerate() {
        for (peer, endpoint) in endpoints.iter().enumerate() {
            if peer != index {
                replicator.add_peer(endpoint.clone());
            }
        }
    }
    println!("3-shard cluster on {endpoints:?} (HMAC frame auth on)\n");

    // The router ranks the shards per cache key; index 0 of the ranking owns
    // the key, the rest are its failover order.
    let router = ShardRouter::connect(
        endpoints.iter().cloned(),
        RouterConfig {
            client: ClientConfig {
                cluster_key: Some(key.clone()),
                ..ClientConfig::default()
            },
            ..RouterConfig::default()
        },
    )?;
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let ranking = rendezvous_rank(&endpoints, request.privacy_level, request.delta);
    let owner = &endpoints[ranking[0]];
    println!(
        "Key (level {}, δ {}) is owned by shard {owner}",
        request.privacy_level, request.delta
    );

    let start = Instant::now();
    let forest = router.privacy_forest(request)?;
    println!(
        "Cold miss solved on the owner in {:?} ({} subtree LPs)\n",
        start.elapsed(),
        forest.entries.len()
    );

    // One authenticated stats connection per shard: the Stats frame returns
    // the server's transport, cache and cluster counters over the wire.
    let client_config = ClientConfig {
        cluster_key: Some(key.clone()),
        ..ClientConfig::default()
    };
    let stats_conns: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect_with(s.local_addr(), client_config.clone()))
        .collect::<Result<_, _>>()?;

    // The push is asynchronous; wait until both peers report the key resident.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resident = stats_conns
            .iter()
            .map(|conn| conn.server_stats())
            .collect::<Result<Vec<_>, _>>()?
            .iter()
            .filter(|report| report.cache.as_ref().is_some_and(|c| c.entries >= 1))
            .count();
        if resident == servers.len() {
            break;
        }
        if Instant::now() > deadline {
            return Err("replication push did not land within 10s".into());
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    println!("After replication (all counters read over the wire):");
    for (endpoint, conn) in endpoints.iter().zip(&stats_conns) {
        let report = conn.server_stats()?;
        let cache = report.cache.expect("every shard stacks a cache");
        let cluster = report
            .cluster
            .expect("every 1.4+ server reports cluster stats");
        println!(
            "  shard {endpoint}: {} resident / {} misses, {} pushes in ({} deduped), {} pushes out",
            cache.entries,
            cache.misses,
            cluster.pushes_received,
            cluster.pushes_deduped,
            cluster.peers.iter().map(|p| p.pushes_sent).sum::<u64>(),
        );
    }

    // A peer that never solved the key serves it straight from its cache.
    let peer = &endpoints[ranking[1]];
    let peer_conn = TcpTransport::connect_with(peer.as_str(), client_config.clone())?;
    let start = Instant::now();
    let replica = peer_conn.privacy_forest(request)?;
    assert_eq!(replica.entries.len(), forest.entries.len());
    let peer_cache = peer_conn
        .server_stats()?
        .cache
        .expect("peer stacks a cache");
    assert_eq!(peer_cache.misses, 0, "the peer never ran an LP solve");
    println!(
        "\nPeer {peer} answered the same key in {:?} — {} hit(s), {} misses: no second solve",
        start.elapsed(),
        peer_cache.hits,
        peer_cache.misses
    );

    // A client without the key is rejected in the handshake with a structured
    // Unauthenticated error (and the server counts the rejection).
    let unkeyed = TcpTransport::connect_with(
        servers[0].local_addr(),
        ClientConfig {
            cluster_key: None,
            ..ClientConfig::default()
        },
    );
    let error = match unkeyed {
        Err(error) => error,
        Ok(_) => return Err("a keyed cluster must reject unkeyed clients".into()),
    };
    println!("\nUnkeyed client rejected: {error}");
    let rejections = stats_conns[0]
        .server_stats()?
        .cluster
        .expect("cluster stats present")
        .auth_rejections;
    println!(
        "Shard {} now counts {rejections} auth rejection(s)",
        endpoints[0]
    );

    // Protocol 1.5: a Ping round trip is the liveness probe behind the
    // peer-health state machine, and a shard's digest summarizes its
    // resident cache keys for anti-entropy re-warm.
    stats_conns[0].ping()?;
    let digest = stats_conns[0].cache_digest()?;
    println!(
        "\nShard {} answers pings; digest: generation {}, {} resident key(s)",
        endpoints[0],
        digest.generation,
        digest.keys.len()
    );

    // A shard joining (or rejoining after a crash) with a cold cache pulls
    // that working set from its peers instead of re-running the solver.
    let cold_service = Arc::new(CachingService::with_defaults(ForestGenerator::new(
        corgi::core::LocationTree::new(grid.clone()),
        prior.clone(),
        config,
    )));
    let cold = TcpServer::bind(
        "127.0.0.1:0",
        cold_service as Arc<dyn MatrixService>,
        TransportConfig {
            cluster_key: Some(key.clone()),
            ..TransportConfig::default()
        },
    )?;
    let report = cold.rewarm_from_peers(&endpoints, client_config.clone());
    println!(
        "Cold shard re-warmed from {} peer(s): {} forest(s) pulled, complete: {}, {} ms, zero solves",
        report.peers_reached,
        report.pulled,
        report.is_complete(),
        report.elapsed_ms
    );
    cold.shutdown();

    let router_stats = router.cluster_stats();
    println!(
        "\nRouter: {} failover(s); per-shard requests {:?}",
        router_stats.failovers,
        router_stats
            .peers
            .iter()
            .map(|p| (p.endpoint.as_str(), p.requests))
            .collect::<Vec<_>>()
    );

    for server in servers {
        server.shutdown();
    }
    Ok(())
}
