//! Ride-share pickup scenario (the paper's motivating LBS use case).
//!
//! A rider wants a car dispatched close to their true position without
//! revealing it.  The example runs the full client/server flow end to end for
//! several riders — each talking framed envelopes to the event-driven TCP
//! server, whose cache is warmed at startup — then compares the pickup
//! estimation error (utility, Eq. 3) and the Bayesian adversary's inference
//! error (privacy) of CORGI against the planar-Laplace baseline.
//!
//! Run with: `cargo run --release --example rideshare_pickup`

use corgi::core::{adversary, laplace::PlanarLaplace, utility, LocationTree, Policy, Predicate};
use corgi::datagen::{
    GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution,
};
use corgi::framework::{
    CachingService, CorgiClient, ForestGenerator, InstrumentedService, MatrixService,
    MetadataAttributeProvider, ServerConfig, TcpServer, TcpTransport, TransportConfig, WarmRequest,
};
use corgi::hexgrid::{HexGrid, HexGridConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = HexGrid::new(HexGridConfig::san_francisco())?;
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::default()).generate(&grid);
    let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let epsilon = 15.0;

    // The dispatch server (untrusted): generator → bounded cache → counters,
    // behind the one-thread reactor.  The (privacy_level 1, δ) grid riders hit
    // is warmed on the dispatch pool while the listener already accepts.
    let config = ServerConfig::builder()
        .epsilon(epsilon)
        .robust_iterations(4)
        .targets_per_subtree(20)
        .build();
    let instrumented = Arc::new(InstrumentedService::new(CachingService::with_defaults(
        ForestGenerator::new(LocationTree::new(grid.clone()), prior.clone(), config),
    )));
    let server = TcpServer::bind(
        "127.0.0.1:0",
        instrumented.clone() as Arc<dyn MatrixService>,
        TransportConfig {
            warm_on_start: Some(WarmRequest::level(1, 6)),
            ..TransportConfig::default()
        },
    )?;
    // Riders reach the dispatch server over TCP; the transport mirrors the
    // tree and prior through the handshake and implements MatrixService.
    let service: Arc<dyn MatrixService> = Arc::new(TcpTransport::connect(server.local_addr())?);
    let laplace = PlanarLaplace::new(epsilon);
    let mut rng = StdRng::seed_from_u64(2024);

    // A pickup spot of interest: the busiest cell in the region.
    let busiest = (0..grid.leaf_count())
        .max_by_key(|&i| metadata.checkin_count(i))
        .unwrap();
    let pickup_target = grid.cell_center(&grid.leaves()[busiest]);

    let mut corgi_error = 0.0;
    let mut laplace_error = 0.0;
    let mut riders = 0usize;
    for &user in metadata.users_with_home().iter().take(12) {
        let Some(home) = metadata.home_of(user) else {
            continue;
        };
        let real = grid.cell_center(&home);
        // Riders never want to be mapped to their own home or to outlier places.
        let policy = Policy::new(
            1,
            0,
            vec![Predicate::is_false("home"), Predicate::is_false("outlier")],
        )?;
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        let client = CorgiClient::new(Arc::clone(&service), policy, provider)?;
        let outcome = client.generate_obfuscated_location(&real, &mut rng)?;
        let reported_center = grid.cell_center(&outcome.report.reported_cell);
        corgi_error += utility::single_target_utility(&real, &reported_center, &pickup_target);

        let laplace_cell = laplace.sample_cell(&grid, &real, &mut rng);
        let laplace_center = grid.cell_center(&laplace_cell);
        laplace_error += utility::single_target_utility(&real, &laplace_center, &pickup_target);
        riders += 1;
    }
    println!("Pickup estimation error towards the busiest venue, averaged over {riders} riders:");
    println!(
        "  CORGI (robust matrix, home/outlier removed): {:.3} km",
        corgi_error / riders as f64
    );
    println!(
        "  Planar Laplace (no customization):           {:.3} km",
        laplace_error / riders as f64
    );

    // Privacy view: what a Bayesian adversary can infer from one subtree's matrix.
    let tree = service.tree();
    let subtree = tree.privacy_forest(1)?[0].clone();
    let response = service.privacy_forest(corgi::framework::messages::MatrixRequest {
        privacy_level: 1,
        delta: 2,
    })?;
    let entry = response
        .matrix_for_leaf(&subtree.leaves()[0])
        .expect("matrix exists");
    let sub_prior = prior
        .restricted_to(&grid, subtree.leaves())
        .unwrap_or_else(|| vec![1.0 / subtree.leaf_count() as f64; subtree.leaf_count()]);
    let distances = tree.distance_matrix(subtree.leaves());
    let inference_error =
        adversary::expected_inference_error(&entry.matrix, &sub_prior, &distances)?;
    let map_success = adversary::map_attack_success(&entry.matrix, &sub_prior)?;
    println!(
        "\nBayesian adversary against the served matrix: expected inference error {:.3} km, MAP success {:.1}% (lower success = more private).",
        inference_error,
        100.0 * map_success
    );

    // Serving-side telemetry: many riders, few distinct (privacy_l, δ) keys —
    // and thanks to the startup warm, rider requests are cache hits.
    let stats = instrumented.stats();
    let cache = instrumented.inner().cache_stats();
    println!(
        "\nServer stats: {} requests ({} errors, incl. warming), mean latency {:?}, max {:?}; cache {} hits / {} misses / {} resident forests.",
        stats.requests,
        stats.errors,
        stats.mean_latency(),
        stats.max_latency,
        cache.hits,
        cache.misses,
        cache.entries
    );
    server.shutdown();
    Ok(())
}
