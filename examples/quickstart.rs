//! Quickstart: obfuscate a single location with CORGI.
//!
//! Builds a location tree over San Francisco, generates a robust obfuscation
//! matrix for the user's privacy-level subtree, customizes it with a simple
//! policy, and reports an obfuscated cell.
//!
//! Run with: `cargo run --release --example quickstart`

use corgi::core::{
    generate_robust_matrix, precision_reduction, prune_matrix, LocationTree, ObfuscationProblem,
    Policy, Predicate, RobustConfig, SolverKind,
};
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution};
use corgi::framework::MetadataAttributeProvider;
use corgi::geo::LatLng;
use corgi::hexgrid::{HexGrid, HexGridConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The server builds the spatial index / location tree (Fig. 1, step 1).
    let grid = HexGrid::new(HexGridConfig::san_francisco())?;
    let tree = LocationTree::new(grid.clone());
    println!(
        "Location tree over San Francisco: height {}, {} leaf cells of ~{:.0} m spacing",
        tree.height(),
        tree.leaves().len(),
        1000.0 * grid.leaf_spacing_km()
    );

    // 2. Priors and location labels come from (synthetic) check-in data.
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::default()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);

    // 3. The user: a real location and a customization policy
    //    <privacy_l = 1, precision_l = 0, preferences = [outlier = false, home = false]>.
    let user_id = metadata.users_with_home()[0];
    let real_location: LatLng = grid.cell_center(&metadata.home_of(user_id).unwrap());
    let policy = Policy::new(
        1,
        0,
        vec![Predicate::is_false("outlier"), Predicate::is_false("home")],
    )?;

    // 4. Server side: robust obfuscation matrix for the subtree of the privacy
    //    forest that contains the user (Algorithm 1 + Algorithm 3).
    let subtree = tree.subtree_containing_point(&real_location, policy.privacy_level)?;
    let restricted_prior = prior
        .restricted_to(&grid, subtree.leaves())
        .unwrap_or_else(|| vec![1.0 / subtree.leaf_count() as f64; subtree.leaf_count()]);
    let targets: Vec<usize> = (0..subtree.leaf_count()).collect();
    let problem = ObfuscationProblem::new(&tree, &subtree, &restricted_prior, &targets, 15.0, true)?;
    let robust = generate_robust_matrix(
        &problem,
        &RobustConfig {
            delta: 2,
            iterations: 5,
            solver: SolverKind::Auto,
        },
    )?;
    println!(
        "Robust matrix over {} cells, quality loss {:.4} km",
        robust.matrix.size(),
        problem.quality_loss(&robust.matrix)
    );

    // 5. User side: evaluate preferences, prune, reduce precision, sample.
    let provider = MetadataAttributeProvider::new(&grid, &metadata, user_id, real_location);
    let real_leaf_cell = tree.leaf_containing(&real_location)?;
    let to_prune: Vec<_> = policy
        .cells_to_prune(&subtree, &provider)
        .into_iter()
        .filter(|c| *c != real_leaf_cell)
        .collect();
    let pruned = prune_matrix(&robust.matrix, &to_prune)?;
    let leaf_priors: Vec<f64> = pruned
        .cells()
        .iter()
        .map(|c| prior.prob_of_cell(&grid, c).max(1e-12))
        .collect();
    let customized = precision_reduction(&pruned, &tree, policy.precision_level, &leaf_priors)?;

    let mut rng = StdRng::seed_from_u64(7);
    let real_leaf = tree.leaf_containing(&real_location)?;
    let reported = customized.sample(&real_leaf, &mut rng)?;
    println!(
        "Real cell {} at {} -> reported cell {} at {} ({} cells pruned by the policy)",
        real_leaf,
        grid.cell_center(&real_leaf),
        reported,
        grid.cell_center(&reported),
        to_prune.len()
    );
    Ok(())
}
