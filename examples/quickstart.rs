//! Quickstart: obfuscate a single location with CORGI — across a real socket.
//!
//! Builds a location tree over San Francisco, composes the serving stack
//! (`InstrumentedService<CachingService<ForestGenerator>>`) behind the
//! event-driven TCP server, and runs the trusted client flow (Algorithm 4)
//! over loopback: the client mirrors the server's tree through the version
//! handshake, then policy evaluation → privacy-forest request (framed
//! envelopes over TCP) → prune → precision-reduce → sample an obfuscated
//! cell.
//!
//! Run with: `cargo run --release --example quickstart`

use corgi::core::{LocationTree, Policy, Predicate};
use corgi::datagen::{
    GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution,
};
use corgi::framework::{
    CachingService, CorgiClient, ForestGenerator, InstrumentedService, MatrixService,
    MetadataAttributeProvider, ServerConfig, TcpServer, TcpTransport, TransportConfig,
};
use corgi::geo::LatLng;
use corgi::hexgrid::{HexGrid, HexGridConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The server builds the spatial index / location tree (Fig. 1, step 1).
    let grid = HexGrid::new(HexGridConfig::san_francisco())?;
    let tree = LocationTree::new(grid.clone());
    println!(
        "Location tree over San Francisco: height {}, {} leaf cells of ~{:.0} m spacing",
        tree.height(),
        tree.leaves().len(),
        1000.0 * grid.leaf_spacing_km()
    );

    // 2. Priors and location labels come from (synthetic) check-in data.
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::default()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);

    // 3. The untrusted server: the raw Algorithm-3 compute path wrapped in a
    //    bounded cache and request instrumentation, served by the one-thread
    //    reactor over framed TCP.
    let config = ServerConfig::builder()
        .epsilon(15.0)
        .robust_iterations(5)
        .targets_per_subtree(20)
        .build();
    let stack: Arc<dyn MatrixService> = Arc::new(InstrumentedService::new(
        CachingService::with_defaults(ForestGenerator::new(tree, prior, config)),
    ));
    let server = TcpServer::bind("127.0.0.1:0", stack, TransportConfig::default())?;

    // 4. The user device connects over TCP: the hello exchange negotiates the
    //    protocol version and mirrors the server's public tree + prior, and
    //    the transport is itself a MatrixService, so the client code is
    //    identical to the in-process deployment.
    let service: Arc<dyn MatrixService> = Arc::new(TcpTransport::connect(server.local_addr())?);
    println!(
        "Connected to the obfuscation server on {}",
        server.local_addr()
    );
    let user_id = metadata.users_with_home()[0];
    let real_location: LatLng = grid.cell_center(&metadata.home_of(user_id).unwrap());
    let policy = Policy::new(
        1,
        0,
        vec![Predicate::is_false("outlier"), Predicate::is_false("home")],
    )?;
    let provider = MetadataAttributeProvider::new(&grid, &metadata, user_id, real_location);
    let client = CorgiClient::new(Arc::clone(&service), policy, provider)?;

    // 5. Algorithm 4 end to end: the server sees only (privacy_l, |S|); the
    //    matrix selection, pruning and sampling stay on the device.
    let mut rng = StdRng::seed_from_u64(7);
    let outcome = client.generate_obfuscated_location(&real_location, &mut rng)?;
    println!(
        "Real cell {} at {} -> reported cell {} at {} ({} cells pruned by the policy)",
        outcome.real_leaf,
        grid.cell_center(&outcome.real_leaf),
        outcome.report.reported_cell,
        grid.cell_center(&outcome.report.reported_cell),
        outcome.pruned_cells.len()
    );

    // A second report with the same policy hits the server-side cache.
    let again = client.generate_obfuscated_location(&real_location, &mut rng)?;
    println!(
        "Second report (cache hit on the server): {}",
        again.report.reported_cell
    );
    server.shutdown();
    Ok(())
}
