//! Policy customization and robustness: what happens when users prune locations.
//!
//! Reproduces the paper's core robustness story on a small scale: two users with
//! different customization policies prune different numbers of cells from the
//! same obfuscation range; the δ-prunable CORGI matrix keeps (almost) all of its
//! ε-Geo-Ind guarantees after pruning while the non-robust matrix does not.
//!
//! The robust matrices come through the serving stack (`Arc<dyn MatrixService>`):
//! the server generates the whole privacy forest without learning which subtree
//! the users are in, and the example picks their subtree's entry client-side.
//!
//! Run with: `cargo run --release --example policy_customization`

use corgi::core::{generate_nonrobust_matrix, geoind, prune_matrix, LocationTree, SolverKind};
use corgi::datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi::framework::messages::MatrixRequest;
use corgi::framework::{
    warm, CachingService, ForestGenerator, MatrixService, ServerConfig, WarmRequest,
};
use corgi::geo::LatLng;
use corgi::hexgrid::{HexGrid, HexGridConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense downtown grid (finer cells than the default SF grid) so the
    // Geo-Ind constraints bind visibly at the paper's epsilon of 15/km.
    let grid = HexGrid::new(HexGridConfig {
        center: LatLng::new(37.7749, -122.4194)?,
        height: 3,
        leaf_spacing_km: 0.12,
    })?;
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig {
        center_decay_km: 0.6,
        ..GowallaLikeConfig::default()
    })
    .generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let tree = LocationTree::new(grid.clone());

    // The obfuscation range: one privacy-level-2 subtree (49 cells).
    let subtree = tree.privacy_forest(2)?[0].clone();
    let epsilon = 15.0;
    let delta = 4;

    // Server-side compute path; the same LP instance backs both matrices.
    let config = ServerConfig::builder()
        .epsilon(epsilon)
        .robust_iterations(6)
        .targets_per_subtree(25)
        .build();
    let generator = ForestGenerator::new(tree, prior, config);
    let problem = generator.problem_for_subtree(&subtree)?;
    let nonrobust = generate_nonrobust_matrix(&problem, SolverKind::Auto)?;

    // The robust matrix arrives through the serving trait: warm the level-2
    // key up front (as a production deployment would at startup), then the
    // request below is answered from the cache.
    let service = Arc::new(CachingService::with_defaults(generator));
    let report = warm(
        service.as_ref(),
        &WarmRequest {
            privacy_levels: vec![2],
            deltas: vec![delta],
        },
    );
    println!(
        "Warmed {} privacy-forest key(s) in {} ms",
        report.warmed, report.elapsed_ms
    );
    let response = service.privacy_forest(MatrixRequest {
        privacy_level: 2,
        delta,
    })?;
    assert_eq!(
        service.cache_stats().expect("caching layer").hits,
        1,
        "served from the warmed cache"
    );
    let robust = &response
        .entries
        .iter()
        .find(|e| e.subtree_root == subtree.root())
        .expect("the forest covers every level-2 subtree")
        .matrix;
    println!(
        "Quality loss: non-robust {:.4} km, delta-prunable CORGI (delta = {delta}) {:.4} km",
        problem.quality_loss(&nonrobust),
        problem.quality_loss(robust),
    );

    // Two users with different customization appetites.
    let counts_per_leaf = dataset.counts_per_leaf(&grid);
    for (user, prune_count) in [("cautious user", 2usize), ("aggressive user", 6)] {
        // Prune the most popular cells from the range (a realistic preference:
        // "do not map me onto crowded venues").
        let mut by_count: Vec<_> = subtree
            .leaves()
            .iter()
            .map(|c| (counts_per_leaf[grid.leaf_index(c).unwrap()], *c))
            .collect();
        by_count.sort_by_key(|&(count, _)| std::cmp::Reverse(count));
        let prune: Vec<_> = by_count.iter().take(prune_count).map(|(_, c)| *c).collect();

        println!("\n{user}: pruning {prune_count} popular cells from the obfuscation range");
        for (name, matrix) in [("non-robust", &nonrobust), ("CORGI", robust)] {
            let pruned = prune_matrix(matrix, &prune)?;
            let survivors: Vec<usize> = problem
                .cells()
                .iter()
                .enumerate()
                .filter(|(_, c)| !prune.contains(c))
                .map(|(i, _)| i)
                .collect();
            let distances: Vec<Vec<f64>> = survivors
                .iter()
                .map(|&i| {
                    survivors
                        .iter()
                        .map(|&j| problem.distances()[i][j])
                        .collect()
                })
                .collect();
            let report = geoind::check_all_pairs(&pruned, &distances, epsilon, 1e-7);
            println!(
                "  {name:<11}: {:>6.2}% of Geo-Ind constraints violated after pruning",
                report.violation_percentage()
            );
        }
    }
    println!("\nThe delta-prunable matrix keeps its guarantees while pruning stays within delta; the non-robust matrix does not (paper Fig. 12).");
    Ok(())
}
